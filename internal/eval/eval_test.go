package eval

import (
	"math"
	"testing"

	"semblock/internal/blocking"
	"semblock/internal/record"
)

// dataset: 6 records, entities {0:{0,1,2}, 1:{3,4}, 2:{5}}.
// Ω = 15 pairs, Ω_tp = 3+1 = 4 pairs.
func evalDataset() *record.Dataset {
	d := record.NewDataset("eval")
	for _, e := range []record.EntityID{0, 0, 0, 1, 1, 2} {
		d.Append(e, map[string]string{"x": "v"})
	}
	return d
}

func TestEvaluatePerfectBlocking(t *testing.T) {
	d := evalDataset()
	res := blocking.NewResult("perfect", [][]record.ID{{0, 1, 2}, {3, 4}})
	m, err := Evaluate(res, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.PC != 1 {
		t.Errorf("PC = %v, want 1", m.PC)
	}
	if m.PQ != 1 {
		t.Errorf("PQ = %v, want 1", m.PQ)
	}
	if m.FM != 1 {
		t.Errorf("FM = %v, want 1", m.FM)
	}
	wantRR := 1 - 4.0/15.0
	if math.Abs(m.RR-wantRR) > 1e-12 {
		t.Errorf("RR = %v, want %v", m.RR, wantRR)
	}
}

func TestEvaluateSingleBlockBlocking(t *testing.T) {
	d := evalDataset()
	// The trivial blocker: everything in one block. PC=1, RR=0.
	res := blocking.NewResult("trivial", [][]record.ID{{0, 1, 2, 3, 4, 5}})
	m, err := Evaluate(res, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.PC != 1 {
		t.Errorf("PC = %v, want 1", m.PC)
	}
	if m.RR != 0 {
		t.Errorf("RR = %v, want 0", m.RR)
	}
	wantPQ := 4.0 / 15.0
	if math.Abs(m.PQ-wantPQ) > 1e-12 {
		t.Errorf("PQ = %v, want %v", m.PQ, wantPQ)
	}
}

func TestEvaluateEmptyBlocking(t *testing.T) {
	d := evalDataset()
	res := blocking.NewResult("empty", nil)
	m, err := Evaluate(res, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.PC != 0 || m.PQ != 0 || m.FM != 0 {
		t.Errorf("empty blocking metrics = %+v, want zeros", m)
	}
	if m.RR != 1 {
		t.Errorf("RR = %v, want 1", m.RR)
	}
}

func TestEvaluatePartial(t *testing.T) {
	d := evalDataset()
	// Block {0,1,5}: pairs (0,1) tp, (0,5) fp, (1,5) fp.
	res := blocking.NewResult("partial", [][]record.ID{{0, 1, 5}})
	m, err := Evaluate(res, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.PC-0.25) > 1e-12 {
		t.Errorf("PC = %v, want 0.25", m.PC)
	}
	if math.Abs(m.PQ-1.0/3.0) > 1e-12 {
		t.Errorf("PQ = %v, want 1/3", m.PQ)
	}
	wantFM := 2 * 0.25 * (1.0 / 3.0) / (0.25 + 1.0/3.0)
	if math.Abs(m.FM-wantFM) > 1e-12 {
		t.Errorf("FM = %v, want %v", m.FM, wantFM)
	}
}

func TestPQStarCountsRedundantComparisons(t *testing.T) {
	d := evalDataset()
	// The same tp pair appears in two blocks: Γ has it once, Γm twice.
	res := blocking.NewResult("dup", [][]record.ID{{0, 1}, {0, 1}})
	m, err := Evaluate(res, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.CandidatePairs != 1 || m.Comparisons != 2 {
		t.Fatalf("pairs=%d comparisons=%d, want 1/2", m.CandidatePairs, m.Comparisons)
	}
	if m.PQ != 1 {
		t.Errorf("PQ = %v, want 1", m.PQ)
	}
	if m.PQStar != 0.5 {
		t.Errorf("PQ* = %v, want 0.5", m.PQStar)
	}
	if m.FMStar >= m.FM {
		t.Errorf("FM* (%v) should be below FM (%v) with redundancy", m.FMStar, m.FM)
	}
}

func TestEvaluateUnlabeledFails(t *testing.T) {
	d := record.NewDataset("u")
	d.Append(record.UnknownEntity, map[string]string{"x": "v"})
	res := blocking.NewResult("x", nil)
	if _, err := Evaluate(res, d); err == nil {
		t.Error("expected error for unlabeled dataset")
	}
}

func TestEvaluateWithTruthMatchesEvaluate(t *testing.T) {
	d := evalDataset()
	res := blocking.NewResult("p", [][]record.ID{{0, 1, 3}})
	m1, err := Evaluate(res, d)
	if err != nil {
		t.Fatal(err)
	}
	m2 := EvaluateWithTruth(res, d, TruthSet(d))
	if m1 != m2 {
		t.Errorf("EvaluateWithTruth diverges: %+v vs %+v", m1, m2)
	}
}

func TestMetricsInRange(t *testing.T) {
	d := evalDataset()
	for _, blocks := range [][][]record.ID{
		nil,
		{{0, 1}},
		{{0, 1, 2, 3, 4, 5}},
		{{0, 5}, {1, 4}, {2, 3}},
	} {
		m, err := Evaluate(blocking.NewResult("x", blocks), d)
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range map[string]float64{"PC": m.PC, "PQ": m.PQ, "RR": m.RR, "FM": m.FM, "PQ*": m.PQStar, "FM*": m.FMStar} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Errorf("%s out of range: %v (blocks %v)", name, v, blocks)
			}
		}
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{PC: 1, PQ: 0.5, RR: 0.9, FM: 2.0 / 3.0, CandidatePairs: 10, NumBlocks: 2}
	s := m.String()
	if s == "" {
		t.Fatal("empty String")
	}
}

// Package eval implements the paper's blocking-quality measures (§6):
// pair completeness (PC), pair quality (PQ), reduction ratio (RR) and
// their harmonic mean FM, plus the meta-blocking variants PQ* and FM*
// used by the Fig. 12 comparison.
package eval

import (
	"fmt"

	"semblock/internal/blocking"
	"semblock/internal/record"
)

// Metrics holds the quality measures of one blocking result.
type Metrics struct {
	// PC = |Γ_tp| / |Ω_tp|: fraction of true matches retained in blocks.
	PC float64
	// PQ = |Γ_tp| / |Γ|: fraction of distinct candidate pairs that are
	// true matches.
	PQ float64
	// RR = 1 - |Γ| / |Ω|: fraction of all-pairs comparisons avoided.
	RR float64
	// FM = harmonic mean of PC and PQ.
	FM float64
	// PQStar = |Γ_tp| / |Γm|: PQ over *redundant* comparisons, the variant
	// used by the meta-blocking paper.
	PQStar float64
	// FMStar = harmonic mean of PC and PQStar.
	FMStar float64

	// CandidatePairs = |Γ|, the distinct pairs in blocks.
	CandidatePairs int64
	// Comparisons = |Γm|, the redundant comparison count.
	Comparisons int64
	// TruePositives = |Γ_tp|.
	TruePositives int64
	// TotalMatches = |Ω_tp|.
	TotalMatches int64
	// NumBlocks = |B|.
	NumBlocks int
	// MaxBlockSize is the largest block's cardinality.
	MaxBlockSize int
}

// Evaluate scores a blocking result against the dataset's ground truth.
// The dataset must be labeled.
func Evaluate(res *blocking.Result, d *record.Dataset) (Metrics, error) {
	if !d.Labeled() {
		return Metrics{}, fmt.Errorf("eval: dataset %s has no ground truth", d.Name)
	}
	truth := record.NewPairSet(0)
	for _, p := range d.TrueMatches() {
		truth.AddPair(p)
	}
	return evaluate(res, d, truth), nil
}

// EvaluateWithTruth scores against a precomputed truth set, avoiding
// repeated TrueMatches scans in parameter sweeps.
func EvaluateWithTruth(res *blocking.Result, d *record.Dataset, truth record.PairSet) Metrics {
	return evaluate(res, d, truth)
}

// TruthSet builds the ground-truth pair set once for reuse across sweeps.
func TruthSet(d *record.Dataset) record.PairSet {
	truth := record.NewPairSet(0)
	for _, p := range d.TrueMatches() {
		truth.AddPair(p)
	}
	return truth
}

func evaluate(res *blocking.Result, d *record.Dataset, truth record.PairSet) Metrics {
	cand := res.CandidatePairs()
	tp := int64(cand.Intersect(truth))
	m := Metrics{
		CandidatePairs: int64(cand.Len()),
		Comparisons:    res.Comparisons(),
		TruePositives:  tp,
		TotalMatches:   int64(truth.Len()),
		NumBlocks:      res.NumBlocks(),
		MaxBlockSize:   res.MaxBlockSize(),
	}
	if m.TotalMatches > 0 {
		m.PC = float64(tp) / float64(m.TotalMatches)
	}
	if m.CandidatePairs > 0 {
		m.PQ = float64(tp) / float64(m.CandidatePairs)
	}
	if m.Comparisons > 0 {
		m.PQStar = float64(tp) / float64(m.Comparisons)
	}
	if total := d.TotalPairs(); total > 0 {
		m.RR = 1 - float64(m.CandidatePairs)/float64(total)
	}
	m.FM = harmonic(m.PC, m.PQ)
	m.FMStar = harmonic(m.PC, m.PQStar)
	return m
}

func harmonic(a, b float64) float64 {
	if a+b == 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}

// String renders the headline measures compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("PC=%.4f PQ=%.4f RR=%.4f FM=%.4f (pairs=%d blocks=%d)",
		m.PC, m.PQ, m.RR, m.FM, m.CandidatePairs, m.NumBlocks)
}

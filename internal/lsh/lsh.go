// Package lsh implements the paper's core contribution (§5): LSH blocking
// over minhash signatures, and Semantic-Aware LSH (SA-LSH) blocking that
// augments each hash table with a w-way AND/OR semantic hash function built
// from semhash signatures.
//
// A blocker is configured with k (hash functions per table), l (number of
// tables) and, for SA-LSH, a semhash schema plus (w, µ). Records whose
// minhash signatures agree on all k components of a table — and, for
// SA-LSH, whose semhash signatures satisfy the table's w-way semantic
// function — are placed into the same block.
package lsh

import (
	"fmt"
	"math"
	"math/rand"

	"semblock/internal/blocking"
	"semblock/internal/engine"
	"semblock/internal/minhash"
	"semblock/internal/record"
	"semblock/internal/semantic"
)

// Mode selects how a w-way semantic hash function combines its w underlying
// semantic hash functions (paper §5.2).
type Mode int

const (
	// ModeAND requires all w semantic hash functions to agree (h[w,∧]).
	ModeAND Mode = iota
	// ModeOR requires at least one semantic hash function to agree (h[w,∨]).
	ModeOR
)

// String renders the paper's µ symbol name.
func (m Mode) String() string {
	if m == ModeAND {
		return "and"
	}
	return "or"
}

// ORStrategy selects the implementation of the w-way OR function. Both
// strategies produce identical candidate pairs (asserted by tests); they
// differ only in constant factors, which the ablation bench compares.
type ORStrategy int

const (
	// BucketPerBit files a record into one sub-bucket per selected set
	// bit, so OR collisions fall out of bucket equality directly.
	BucketPerBit ORStrategy = iota
	// PostFilter buckets on the minhash band alone, then splits each
	// bucket by selected set bits afterwards.
	PostFilter
)

// SemanticOption configures the semantic augmentation of SA-LSH.
type SemanticOption struct {
	// Schema provides semhash signatures (Algorithm 1).
	Schema *semantic.Schema
	// W is the number of semhash functions per w-way semantic function.
	W int
	// Mode selects AND (∧) or OR (∨) composition.
	Mode Mode
	// ORStrategy selects the OR implementation (BucketPerBit by default).
	ORStrategy ORStrategy
	// GlobalBits, when true, selects the w semhash functions once and
	// reuses them for every hash table, instead of the paper's per-table
	// random choice. Exists for the placement ablation
	// (BenchmarkAblationSemPlacement): a single global choice is cheaper
	// but loses the independence that makes the OR-collision model
	// 1-(1-s^k·p)^l accurate across tables.
	GlobalBits bool
}

// Config configures an LSH or SA-LSH blocker.
type Config struct {
	// Attrs are the record attributes shingled into the textual key.
	Attrs []string
	// Q is the q-gram size for shingling.
	Q int
	// K is the number of minhash functions per hash table.
	K int
	// L is the number of hash tables.
	L int
	// Seed drives every random choice (hash seeds, semantic function
	// selection); fixed seed ⇒ fully deterministic blocking.
	Seed int64
	// Workers caps the worker pools of the batch Block path — both the
	// signature stage and the l concurrent table builds (0 = GOMAXPROCS).
	// It never changes the blocking output, only how the work is spread
	// over goroutines; Workers: 1 reproduces a fully single-threaded run.
	Workers int
	// Semantic, when non-nil, upgrades the blocker from LSH to SA-LSH.
	Semantic *SemanticOption
}

// SparseIDError reports a dataset whose record IDs are not dense 0..n-1 in
// record order — the layout the signature and table-build paths index by.
// Datasets grown through Dataset.Append always satisfy it; the error guards
// hand-assembled or externally mutated records.
type SparseIDError struct {
	// Dataset is the offending dataset's name.
	Dataset string
	// Index is the record's position in the dataset.
	Index int
	// ID is the record's actual ID (expected to equal Index).
	ID record.ID
}

func (e *SparseIDError) Error() string {
	return fmt.Sprintf("lsh: dataset %q is not densely indexed: record at position %d has ID %d (want %d)",
		e.Dataset, e.Index, e.ID, e.Index)
}

// ValidateDenseIDs checks that record IDs are exactly 0..n-1 in record
// order, returning a *SparseIDError otherwise.
func ValidateDenseIDs(d *record.Dataset) error {
	for i, r := range d.Records() {
		if r.ID != record.ID(i) {
			return &SparseIDError{Dataset: d.Name, Index: i, ID: r.ID}
		}
	}
	return nil
}

// Blocker is a configured (SA-)LSH blocking instance.
type Blocker struct {
	cfg    Config
	signer *Signer
}

// New validates the configuration and builds a blocker.
func New(cfg Config) (*Blocker, error) {
	s, err := NewSigner(cfg)
	if err != nil {
		return nil, err
	}
	return &Blocker{cfg: cfg, signer: s}, nil
}

// Name returns "lsh" or "sa-lsh".
func (b *Blocker) Name() string {
	if b.cfg.Semantic != nil {
		return "sa-lsh"
	}
	return "lsh"
}

// Config returns the blocker's configuration.
func (b *Blocker) Config() Config { return b.cfg }

// Block groups the dataset into blocks. Runtime is O(n · k · l) hash work
// plus bucket bookkeeping; both the signature computation and the l table
// builds run on worker pools (the latter through internal/engine, capped by
// Config.Workers). Returns *SparseIDError if the dataset's record IDs are
// not dense 0..n-1.
func (b *Blocker) Block(d *record.Dataset) (*blocking.Result, error) {
	sigs, err := b.signer.SignDataset(d)
	if err != nil {
		return nil, err
	}

	var semSigs []semantic.BitVec
	if b.cfg.Semantic != nil {
		semSigs = b.cfg.Semantic.Schema.SignatureMatrix(d)
	}

	postFilter := b.cfg.Semantic != nil &&
		b.cfg.Semantic.Mode == ModeOR && b.cfg.Semantic.ORStrategy == PostFilter
	spec := engine.Spec{
		Tables:  b.cfg.L,
		Records: d.Len(),
		Workers: b.cfg.Workers,
		Keys: func(table int, id record.ID, dst []uint64) []uint64 {
			if postFilter {
				// Bucket on the minhash band alone; semantic splitting
				// happens once the table's buckets are complete.
				return append(dst, minhash.BandKey(table, b.signer.Band(table, sigs[id])))
			}
			var sem semantic.BitVec
			if semSigs != nil {
				sem = semSigs[id]
			}
			return b.signer.BucketKeys(table, sigs[id], sem, dst)
		},
	}
	if postFilter {
		spec.Finish = func(table int, t *engine.Table) [][]record.ID {
			bits := b.signer.TableBits(table)
			var out [][]record.ID
			t.Buckets(func(_ uint64, ids []record.ID) {
				out = append(out, SplitByBits(ids, semSigs, bits)...)
			})
			return out
		}
	}
	return blocking.NewResult(b.Name(), engine.Build(spec)), nil
}

// selectBits chooses the w distinct semhash-function indices of one hash
// table, deterministically from the blocker seed and table number
// ("w randomly chosen functions from Hg", §5.2).
func selectBits(seed int64, table, w, bits int) []int {
	rng := rand.New(rand.NewSource(seed<<16 ^ int64(table+1)*0x9e3779b9))
	perm := rng.Perm(bits)
	out := perm[:w]
	return out
}

func allBitsSet(v semantic.BitVec, bits []int) bool {
	for _, b := range bits {
		if !v.Get(b) {
			return false
		}
	}
	return true
}

// mixBit folds a semhash bit index into a bucket key: the bit index is
// diffused by one SplitMix64 round before being xor-folded into the band
// key, and the combination is finalised by a second round, so every (key,
// bit) input maps to a well-separated 64-bit sub-bucket key. The +1 keeps
// bit 0 away from Mix64's (perfectly valid but aesthetically suspect)
// zero fixed input.
func mixBit(key uint64, bit int) uint64 {
	return minhash.Mix64(key ^ minhash.Mix64(uint64(bit)+1))
}

// SplitByBits implements the PostFilter OR strategy: one sub-block per
// selected bit, containing the bucket's records having that bit set.
func SplitByBits(ids []record.ID, semSigs []semantic.BitVec, bits []int) [][]record.ID {
	var out [][]record.ID
	for _, bit := range bits {
		var sub []record.ID
		for _, id := range ids {
			if semSigs[id].Get(bit) {
				sub = append(sub, id)
			}
		}
		if len(sub) >= 2 {
			out = append(out, sub)
		}
	}
	return out
}

// CollisionProbability returns the probability 1-(1-s^k)^l that two records
// with textual similarity s share a block under plain LSH banding (§5.1).
func CollisionProbability(s float64, k, l int) float64 {
	return 1 - math.Pow(1-math.Pow(s, float64(k)), float64(l))
}

// SemanticFactor returns the probability p that a w-way semantic hash
// function returns true for a pair whose per-function agreement probability
// is s' (§5.2): (s')^w for AND, 1-(1-s')^w for OR.
func SemanticFactor(sprime float64, w int, mode Mode) float64 {
	if mode == ModeAND {
		return math.Pow(sprime, float64(w))
	}
	return 1 - math.Pow(1-sprime, float64(w))
}

// SACollisionProbability returns the SA-LSH collision probability
// 1-(1-s^k·p)^l for textual similarity s and semantic agreement s' (§5.2).
func SACollisionProbability(s, sprime float64, k, l, w int, mode Mode) float64 {
	p := SemanticFactor(sprime, w, mode)
	return 1 - math.Pow(1-math.Pow(s, float64(k))*p, float64(l))
}

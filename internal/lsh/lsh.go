// Package lsh implements the paper's core contribution (§5): LSH blocking
// over minhash signatures, and Semantic-Aware LSH (SA-LSH) blocking that
// augments each hash table with a w-way AND/OR semantic hash function built
// from semhash signatures.
//
// A blocker is configured with k (hash functions per table), l (number of
// tables) and, for SA-LSH, a semhash schema plus (w, µ). Records whose
// minhash signatures agree on all k components of a table — and, for
// SA-LSH, whose semhash signatures satisfy the table's w-way semantic
// function — are placed into the same block.
package lsh

import (
	"math"
	"math/rand"

	"semblock/internal/blocking"
	"semblock/internal/minhash"
	"semblock/internal/record"
	"semblock/internal/semantic"
)

// Mode selects how a w-way semantic hash function combines its w underlying
// semantic hash functions (paper §5.2).
type Mode int

const (
	// ModeAND requires all w semantic hash functions to agree (h[w,∧]).
	ModeAND Mode = iota
	// ModeOR requires at least one semantic hash function to agree (h[w,∨]).
	ModeOR
)

// String renders the paper's µ symbol name.
func (m Mode) String() string {
	if m == ModeAND {
		return "and"
	}
	return "or"
}

// ORStrategy selects the implementation of the w-way OR function. Both
// strategies produce identical candidate pairs (asserted by tests); they
// differ only in constant factors, which the ablation bench compares.
type ORStrategy int

const (
	// BucketPerBit files a record into one sub-bucket per selected set
	// bit, so OR collisions fall out of bucket equality directly.
	BucketPerBit ORStrategy = iota
	// PostFilter buckets on the minhash band alone, then splits each
	// bucket by selected set bits afterwards.
	PostFilter
)

// SemanticOption configures the semantic augmentation of SA-LSH.
type SemanticOption struct {
	// Schema provides semhash signatures (Algorithm 1).
	Schema *semantic.Schema
	// W is the number of semhash functions per w-way semantic function.
	W int
	// Mode selects AND (∧) or OR (∨) composition.
	Mode Mode
	// ORStrategy selects the OR implementation (BucketPerBit by default).
	ORStrategy ORStrategy
	// GlobalBits, when true, selects the w semhash functions once and
	// reuses them for every hash table, instead of the paper's per-table
	// random choice. Exists for the placement ablation
	// (BenchmarkAblationSemPlacement): a single global choice is cheaper
	// but loses the independence that makes the OR-collision model
	// 1-(1-s^k·p)^l accurate across tables.
	GlobalBits bool
}

// Config configures an LSH or SA-LSH blocker.
type Config struct {
	// Attrs are the record attributes shingled into the textual key.
	Attrs []string
	// Q is the q-gram size for shingling.
	Q int
	// K is the number of minhash functions per hash table.
	K int
	// L is the number of hash tables.
	L int
	// Seed drives every random choice (hash seeds, semantic function
	// selection); fixed seed ⇒ fully deterministic blocking.
	Seed int64
	// Semantic, when non-nil, upgrades the blocker from LSH to SA-LSH.
	Semantic *SemanticOption
}

// Blocker is a configured (SA-)LSH blocking instance.
type Blocker struct {
	cfg    Config
	signer *Signer
}

// New validates the configuration and builds a blocker.
func New(cfg Config) (*Blocker, error) {
	s, err := NewSigner(cfg)
	if err != nil {
		return nil, err
	}
	return &Blocker{cfg: cfg, signer: s}, nil
}

// Name returns "lsh" or "sa-lsh".
func (b *Blocker) Name() string {
	if b.cfg.Semantic != nil {
		return "sa-lsh"
	}
	return "lsh"
}

// Config returns the blocker's configuration.
func (b *Blocker) Config() Config { return b.cfg }

// Block groups the dataset into blocks. Runtime is O(n · k · l) hash work
// plus bucket bookkeeping; signatures are computed in parallel.
func (b *Blocker) Block(d *record.Dataset) (*blocking.Result, error) {
	sigs := b.signer.SignDataset(d)

	var semSigs []semantic.BitVec
	if b.cfg.Semantic != nil {
		semSigs = b.cfg.Semantic.Schema.SignatureMatrix(d)
	}

	var blocks [][]record.ID
	postFilter := b.cfg.Semantic != nil &&
		b.cfg.Semantic.Mode == ModeOR && b.cfg.Semantic.ORStrategy == PostFilter
	var keys []uint64
	for table := 0; table < b.cfg.L; table++ {
		buckets := make(map[uint64][]record.ID)
		for _, r := range d.Records() {
			if postFilter {
				// Bucket on the minhash band alone; semantic splitting
				// happens once the table's buckets are complete.
				key := minhash.BandKey(table, b.signer.Band(table, sigs[r.ID]))
				buckets[key] = append(buckets[key], r.ID)
				continue
			}
			var sem semantic.BitVec
			if semSigs != nil {
				sem = semSigs[r.ID]
			}
			keys = b.signer.BucketKeys(table, sigs[r.ID], sem, keys[:0])
			for _, key := range keys {
				buckets[key] = append(buckets[key], r.ID)
			}
		}
		if postFilter {
			bits := b.signer.TableBits(table)
			for _, ids := range buckets {
				blocks = append(blocks, SplitByBits(ids, semSigs, bits)...)
			}
			continue
		}
		for _, ids := range buckets {
			if len(ids) >= 2 {
				blocks = append(blocks, ids)
			}
		}
	}
	return blocking.NewResult(b.Name(), blocks), nil
}

// selectBits chooses the w distinct semhash-function indices of one hash
// table, deterministically from the blocker seed and table number
// ("w randomly chosen functions from Hg", §5.2).
func selectBits(seed int64, table, w, bits int) []int {
	rng := rand.New(rand.NewSource(seed<<16 ^ int64(table+1)*0x9e3779b9))
	perm := rng.Perm(bits)
	out := perm[:w]
	return out
}

func allBitsSet(v semantic.BitVec, bits []int) bool {
	for _, b := range bits {
		if !v.Get(b) {
			return false
		}
	}
	return true
}

// mixBit folds a semhash bit index into a bucket key.
func mixBit(key uint64, bit int) uint64 {
	return minhash.BandKey(int(key%1024)+bit+7, []uint64{key, uint64(bit)})
}

// SplitByBits implements the PostFilter OR strategy: one sub-block per
// selected bit, containing the bucket's records having that bit set.
func SplitByBits(ids []record.ID, semSigs []semantic.BitVec, bits []int) [][]record.ID {
	var out [][]record.ID
	for _, bit := range bits {
		var sub []record.ID
		for _, id := range ids {
			if semSigs[id].Get(bit) {
				sub = append(sub, id)
			}
		}
		if len(sub) >= 2 {
			out = append(out, sub)
		}
	}
	return out
}

// CollisionProbability returns the probability 1-(1-s^k)^l that two records
// with textual similarity s share a block under plain LSH banding (§5.1).
func CollisionProbability(s float64, k, l int) float64 {
	return 1 - math.Pow(1-math.Pow(s, float64(k)), float64(l))
}

// SemanticFactor returns the probability p that a w-way semantic hash
// function returns true for a pair whose per-function agreement probability
// is s' (§5.2): (s')^w for AND, 1-(1-s')^w for OR.
func SemanticFactor(sprime float64, w int, mode Mode) float64 {
	if mode == ModeAND {
		return math.Pow(sprime, float64(w))
	}
	return 1 - math.Pow(1-sprime, float64(w))
}

// SACollisionProbability returns the SA-LSH collision probability
// 1-(1-s^k·p)^l for textual similarity s and semantic agreement s' (§5.2).
func SACollisionProbability(s, sprime float64, k, l, w int, mode Mode) float64 {
	p := SemanticFactor(sprime, w, mode)
	return 1 - math.Pow(1-math.Pow(s, float64(k))*p, float64(l))
}

package lsh

import (
	"math"
	"testing"

	"semblock/internal/record"
	"semblock/internal/semantic"
	"semblock/internal/taxonomy"
	"semblock/internal/textual"
)

// fixtureDataset builds a small bibliographic dataset mirroring the paper's
// running example: r1,r2,r3 conference articles, r4,r5 technical reports,
// r6 ambiguous.
func fixtureDataset(t *testing.T) (*record.Dataset, *semantic.Schema) {
	t.Helper()
	d := record.NewDataset("fixture")
	add := func(entity record.EntityID, title, authors string, attrs map[string]string) *record.Record {
		m := map[string]string{"title": title, "authors": authors}
		for k, v := range attrs {
			m[k] = v
		}
		return d.Append(entity, m)
	}
	conf := map[string]string{"booktitle": "proc"}
	tr := map[string]string{"institution": "cmu"}
	add(0, "The cascade-correlation learning architecture", "E. Fahlman and C. Lebiere", conf)
	add(0, "Cascade correlation learning architecture", "E. Fahlman & C. Lebiere", conf)
	add(1, "A genetic cascade correlation learning algorithm", "", conf)
	add(2, "The cascade corelation learning architecture", "Fahlman, S., & Lebiere, C.", tr)
	add(3, "Controlled growth of cascade correlation nets", "", tr)
	add(0, "The cascade-correlation learn architecture", "Lebiere, C. and Fahlman, S.", nil)

	fn, err := semantic.NewCoraFunction(taxonomy.Bibliographic())
	if err != nil {
		t.Fatal(err)
	}
	schema, err := semantic.BuildSchema(fn, d)
	if err != nil {
		t.Fatal(err)
	}
	return d, schema
}

func TestNewValidation(t *testing.T) {
	_, schema := fixtureDataset(t)
	cases := []Config{
		{Attrs: nil, Q: 2, K: 1, L: 1},
		{Attrs: []string{"title"}, Q: 0, K: 1, L: 1},
		{Attrs: []string{"title"}, Q: 2, K: 0, L: 1},
		{Attrs: []string{"title"}, Q: 2, K: 1, L: 0},
		{Attrs: []string{"title"}, Q: 2, K: 1, L: 1, Semantic: &SemanticOption{Schema: nil, W: 1}},
		{Attrs: []string{"title"}, Q: 2, K: 1, L: 1, Semantic: &SemanticOption{Schema: schema, W: 0}},
		{Attrs: []string{"title"}, Q: 2, K: 1, L: 1, Semantic: &SemanticOption{Schema: schema, W: schema.Bits() + 1}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestName(t *testing.T) {
	_, schema := fixtureDataset(t)
	b, err := New(Config{Attrs: []string{"title"}, Q: 2, K: 2, L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "lsh" {
		t.Errorf("Name = %q", b.Name())
	}
	sb, err := New(Config{Attrs: []string{"title"}, Q: 2, K: 2, L: 2,
		Semantic: &SemanticOption{Schema: schema, W: 1, Mode: ModeOR}})
	if err != nil {
		t.Fatal(err)
	}
	if sb.Name() != "sa-lsh" {
		t.Errorf("semantic Name = %q", sb.Name())
	}
}

// TestProposition52 checks Prop 5.2(1): textually identical records are
// always hashed into the same block by plain LSH.
func TestProposition52(t *testing.T) {
	d := record.NewDataset("identical")
	d.Append(0, map[string]string{"title": "Entity Resolution"})
	d.Append(0, map[string]string{"title": "entity   resolution"}) // normalises identically
	d.Append(1, map[string]string{"title": "something else entirely"})
	for seed := int64(0); seed < 20; seed++ {
		b, err := New(Config{Attrs: []string{"title"}, Q: 3, K: 4, L: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Block(d)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Covers(0, 1) {
			t.Fatalf("seed %d: identical records not co-blocked", seed)
		}
	}
}

// TestProposition53 checks Prop 5.3(1): semantically disjoint records are
// never co-blocked by SA-LSH, regardless of textual similarity, for both
// AND and OR modes.
func TestProposition53(t *testing.T) {
	d := record.NewDataset("disjoint")
	// Identical titles; one journal article (journal set), one conference
	// paper (booktitle set). simS = 0 because C3 and C4 are siblings.
	d.Append(0, map[string]string{"title": "The cascade correlation learning architecture", "journal": "x"})
	d.Append(1, map[string]string{"title": "The cascade correlation learning architecture", "booktitle": "y"})
	fn, err := semantic.NewCoraFunction(taxonomy.Bibliographic())
	if err != nil {
		t.Fatal(err)
	}
	schema, err := semantic.BuildSchema(fn, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeAND, ModeOR} {
		for w := 1; w <= schema.Bits(); w++ {
			for seed := int64(0); seed < 10; seed++ {
				b, err := New(Config{Attrs: []string{"title"}, Q: 2, K: 2, L: 4, Seed: seed,
					Semantic: &SemanticOption{Schema: schema, W: w, Mode: mode}})
				if err != nil {
					t.Fatal(err)
				}
				res, err := b.Block(d)
				if err != nil {
					t.Fatal(err)
				}
				if res.Covers(0, 1) {
					t.Fatalf("mode=%v w=%d seed=%d: semantically disjoint records co-blocked", mode, w, seed)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	d, schema := fixtureDataset(t)
	cfg := Config{Attrs: []string{"title", "authors"}, Q: 2, K: 2, L: 4, Seed: 11,
		Semantic: &SemanticOption{Schema: schema, W: 2, Mode: ModeOR}}
	b1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := b1.Block(d)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b2.Block(d)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := r1.CandidatePairs().Slice(), r2.CandidatePairs().Slice()
	if len(p1) != len(p2) {
		t.Fatalf("pair counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

// TestORStrategiesEquivalent asserts BucketPerBit and PostFilter produce
// identical candidate-pair sets (they are two implementations of the same
// w-way OR function).
func TestORStrategiesEquivalent(t *testing.T) {
	d, schema := fixtureDataset(t)
	for _, w := range []int{1, 2, 3, 5} {
		for seed := int64(0); seed < 5; seed++ {
			base := Config{Attrs: []string{"title", "authors"}, Q: 2, K: 2, L: 6, Seed: seed}
			base.Semantic = &SemanticOption{Schema: schema, W: w, Mode: ModeOR, ORStrategy: BucketPerBit}
			b1, err := New(base)
			if err != nil {
				t.Fatal(err)
			}
			base.Semantic = &SemanticOption{Schema: schema, W: w, Mode: ModeOR, ORStrategy: PostFilter}
			b2, err := New(base)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := b1.Block(d)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := b2.Block(d)
			if err != nil {
				t.Fatal(err)
			}
			p1, p2 := r1.CandidatePairs(), r2.CandidatePairs()
			if p1.Len() != p2.Len() || p1.Intersect(p2) != p1.Len() {
				t.Fatalf("w=%d seed=%d: OR strategies disagree (%d vs %d pairs)", w, seed, p1.Len(), p2.Len())
			}
		}
	}
}

// TestSemanticFiltersTextualCollisions reproduces the paper's Example 5.1:
// a technical report textually similar to conference articles must not be
// blocked with them once semantics are considered, while the ambiguous
// record still may.
func TestSemanticFiltersTextualCollisions(t *testing.T) {
	d, schema := fixtureDataset(t)
	plain, err := New(Config{Attrs: []string{"title", "authors"}, Q: 2, K: 2, L: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := New(Config{Attrs: []string{"title", "authors"}, Q: 2, K: 2, L: 8, Seed: 3,
		Semantic: &SemanticOption{Schema: schema, W: 1, Mode: ModeOR}})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Block(d)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sa.Block(d)
	if err != nil {
		t.Fatal(err)
	}
	// r1 (id 0, conference) and r4 (id 3, technical report) are textually
	// near-identical: plain LSH with l=8 almost surely co-blocks them.
	if !rp.Covers(0, 3) {
		t.Skip("textual collision did not occur at this seed; statistical precondition unmet")
	}
	if rs.Covers(0, 3) {
		t.Error("SA-LSH must filter the conference/TR pair (simS=0)")
	}
	// SA-LSH keeps at least the duplicate conference pair r1,r2.
	if !rs.Covers(0, 1) {
		t.Error("SA-LSH lost the true-match conference pair")
	}
	// Candidate set must shrink.
	if rs.CandidatePairs().Len() > rp.CandidatePairs().Len() {
		t.Errorf("SA-LSH pairs (%d) exceed LSH pairs (%d)", rs.CandidatePairs().Len(), rp.CandidatePairs().Len())
	}
}

// TestBandingCollisionMatchesModel verifies empirically that the collision
// frequency across independent seeds approximates 1-(1-s^k)^l.
func TestBandingCollisionMatchesModel(t *testing.T) {
	a := "abcdefghijklmnopqrst"
	b := "abcdefghijklmnzzzzzz" // shares a long prefix
	s := textual.QGramJaccard(a, b, 2)
	d := record.NewDataset("model")
	d.Append(0, map[string]string{"title": a})
	d.Append(1, map[string]string{"title": b})
	const trials = 400
	k, l := 2, 3
	hits := 0
	for seed := int64(0); seed < trials; seed++ {
		blk, err := New(Config{Attrs: []string{"title"}, Q: 2, K: k, L: l, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := blk.Block(d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Covers(0, 1) {
			hits++
		}
	}
	got := float64(hits) / trials
	want := CollisionProbability(s, k, l)
	// Std error ~ sqrt(p(1-p)/400) <= 0.025; allow 4 sigma.
	if math.Abs(got-want) > 0.1 {
		t.Errorf("empirical collision %v, model %v (s=%v)", got, want, s)
	}
}

func TestCollisionProbability(t *testing.T) {
	// Paper §6.1: sh=0.3, k=4 needs l=63 for >=40% collision.
	if got := CollisionProbability(0.3, 4, 63); got < 0.40 || got > 0.41 {
		t.Errorf("P(0.3;4,63) = %v, want just above 0.40", got)
	}
	// Boundary behaviour.
	if CollisionProbability(1, 5, 10) != 1 {
		t.Error("s=1 must always collide")
	}
	if CollisionProbability(0, 5, 10) != 0 {
		t.Error("s=0 must never collide")
	}
	// Monotone in s.
	prev := -1.0
	for s := 0.0; s <= 1.0; s += 0.05 {
		p := CollisionProbability(s, 4, 63)
		if p < prev {
			t.Fatalf("collision probability not monotone at s=%v", s)
		}
		prev = p
	}
}

func TestSemanticFactor(t *testing.T) {
	// Fig. 5: AND decreases with w, OR increases with w.
	for _, s := range []float64{0.2, 0.5, 0.8} {
		for w := 1; w < 15; w++ {
			if SemanticFactor(s, w+1, ModeAND) > SemanticFactor(s, w, ModeAND) {
				t.Fatalf("AND factor increased at s=%v w=%d", s, w)
			}
			if SemanticFactor(s, w+1, ModeOR) < SemanticFactor(s, w, ModeOR) {
				t.Fatalf("OR factor decreased at s=%v w=%d", s, w)
			}
		}
	}
	// w=1: AND == OR.
	if SemanticFactor(0.37, 1, ModeAND) != SemanticFactor(0.37, 1, ModeOR) {
		t.Error("1-way AND and OR must coincide")
	}
}

func TestSACollisionProbability(t *testing.T) {
	// Zero semantic similarity kills the collision probability entirely.
	if got := SACollisionProbability(1.0, 0, 4, 63, 2, ModeAND); got != 0 {
		t.Errorf("s'=0 AND: %v, want 0", got)
	}
	if got := SACollisionProbability(1.0, 0, 4, 63, 2, ModeOR); got != 0 {
		t.Errorf("s'=0 OR: %v, want 0", got)
	}
	// SA collision never exceeds the plain LSH collision (Prop 5.3(2)).
	for _, s := range []float64{0.2, 0.5, 0.9} {
		for _, sp := range []float64{0.1, 0.5, 1.0} {
			plain := CollisionProbability(s, 4, 63)
			sa := SACollisionProbability(s, sp, 4, 63, 3, ModeOR)
			if sa > plain+1e-12 {
				t.Errorf("SA collision %v exceeds plain %v at s=%v s'=%v", sa, plain, s, sp)
			}
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeAND.String() != "and" || ModeOR.String() != "or" {
		t.Error("Mode.String mismatch")
	}
}

func TestSelectBitsDistinct(t *testing.T) {
	for table := 0; table < 50; table++ {
		bits := selectBits(7, table, 4, 5)
		seen := map[int]bool{}
		for _, b := range bits {
			if b < 0 || b >= 5 {
				t.Fatalf("bit out of range: %d", b)
			}
			if seen[b] {
				t.Fatalf("duplicate bit %d in table %d", b, table)
			}
			seen[b] = true
		}
	}
}

// TestGlobalBitsSelection verifies the placement ablation knob: with
// GlobalBits every table uses the table-0 semantic function choice, so
// records failing those specific bits under AND can never block anywhere,
// whereas per-table choices vary across tables.
func TestGlobalBitsSelection(t *testing.T) {
	d, schema := fixtureDataset(t)
	for _, global := range []bool{false, true} {
		b, err := New(Config{Attrs: []string{"title", "authors"}, Q: 2, K: 2, L: 6, Seed: 5,
			Semantic: &SemanticOption{Schema: schema, W: 2, Mode: ModeOR, GlobalBits: global}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Block(d)
		if err != nil {
			t.Fatal(err)
		}
		// Prop 5.3 must hold in both placements: the conference/TR pair
		// (records 0 and 3) is semantically disjoint.
		if res.Covers(0, 3) {
			t.Errorf("global=%v: semantically disjoint pair co-blocked", global)
		}
	}
	// Global selection is deterministic per seed: both constructions of
	// the same config agree.
	cfg := Config{Attrs: []string{"title"}, Q: 2, K: 2, L: 4, Seed: 9,
		Semantic: &SemanticOption{Schema: schema, W: 2, Mode: ModeAND, GlobalBits: true}}
	b1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := b1.Block(d)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b2.Block(d)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CandidatePairs().Len() != r2.CandidatePairs().Len() {
		t.Error("GlobalBits blocking not deterministic")
	}
}

func TestBlockEmptyDataset(t *testing.T) {
	b, err := New(Config{Attrs: []string{"title"}, Q: 2, K: 2, L: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Block(record.NewDataset("empty"))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBlocks() != 0 {
		t.Errorf("empty dataset produced %d blocks", res.NumBlocks())
	}
}

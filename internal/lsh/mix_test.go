package lsh

import (
	"math/rand"
	"testing"
)

// TestMixBitCollisionRate is the collision-rate regression test for the
// splitmix64-based mixBit: over a large population of distinct (key, bit)
// inputs the mixed keys must be collision-free. For 2^18 uniform 64-bit
// outputs the birthday bound puts the expected number of collisions at
// ~2e-9, so a single collision indicates a broken mixer (the previous
// ad-hoc mixing folded the key through `int(key%1024)+bit+7`, which loses
// entropy for correlated keys).
func TestMixBitCollisionRate(t *testing.T) {
	const keys, bits = 4096, 64 // 2^18 inputs
	rng := rand.New(rand.NewSource(42))
	seen := make(map[uint64][2]uint64, keys*bits)
	for i := 0; i < keys; i++ {
		key := rng.Uint64()
		for bit := 0; bit < bits; bit++ {
			mixed := mixBit(key, bit)
			if prev, dup := seen[mixed]; dup {
				if prev[0] == key && prev[1] == uint64(bit) {
					continue // duplicate input (astronomically unlikely), not a mixer collision
				}
				t.Fatalf("mixBit collision: (%#x,%d) and (%#x,%d) both map to %#x",
					prev[0], prev[1], key, bit, mixed)
			}
			seen[mixed] = [2]uint64{key, uint64(bit)}
		}
	}
}

// TestMixBitSeparatesBits asserts the property the OR bucket-per-bit
// strategy depends on: for one band key, different selected bits must land
// in different sub-buckets.
func TestMixBitSeparatesBits(t *testing.T) {
	for _, key := range []uint64{0, 1, ^uint64(0), 0x9e3779b97f4a7c15} {
		seen := make(map[uint64]int)
		for bit := 0; bit < 256; bit++ {
			mixed := mixBit(key, bit)
			if prev, dup := seen[mixed]; dup {
				t.Fatalf("key %#x: bits %d and %d share sub-bucket %#x", key, prev, bit, mixed)
			}
			seen[mixed] = bit
		}
	}
}

// TestMixBitAvalanche spot-checks output diffusion: flipping one input key
// bit must flip a healthy fraction of output bits on average (a property
// the old `key%1024` mixing lacked for high key bits).
func TestMixBitAvalanche(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const trials = 2000
	var flipped int
	for i := 0; i < trials; i++ {
		key := rng.Uint64()
		pos := uint(rng.Intn(64))
		a := mixBit(key, 3)
		b := mixBit(key^(1<<pos), 3)
		flipped += popcount(a ^ b)
	}
	avg := float64(flipped) / trials
	if avg < 24 || avg > 40 {
		t.Fatalf("avalanche average %.1f output bits flipped per input bit, want ~32 (24..40)", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

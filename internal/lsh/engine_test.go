package lsh

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"semblock/internal/datagen"
	"semblock/internal/record"
	"semblock/internal/semantic"
	"semblock/internal/taxonomy"
)

// coraFixture builds a mid-size synthetic Cora dataset plus its semhash
// schema for the parallel-engine tests.
func coraFixture(t *testing.T, n int) (*record.Dataset, *semantic.Schema) {
	t.Helper()
	cfg := datagen.DefaultCoraConfig()
	cfg.Records = n
	d := datagen.Cora(cfg)
	fn, err := semantic.NewCoraFunction(taxonomy.Bibliographic())
	if err != nil {
		t.Fatal(err)
	}
	schema, err := semantic.BuildSchema(fn, d)
	if err != nil {
		t.Fatal(err)
	}
	return d, schema
}

// canonicalBlocks renders a block set as a sorted multiset of sorted blocks.
func canonicalBlocks(blocks [][]record.ID) []string {
	out := make([]string, 0, len(blocks))
	for _, b := range blocks {
		ids := append([]record.ID(nil), b...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out = append(out, fmt.Sprint(ids))
	}
	sort.Strings(out)
	return out
}

// TestORStrategyParityParallel asserts BucketPerBit and PostFilter produce
// identical block multisets under the parallel table-build engine, across
// worker counts. Run with -race (the CI race job does) this also exercises
// concurrent table builds over the shared signature matrices.
func TestORStrategyParityParallel(t *testing.T) {
	d, schema := coraFixture(t, 400)
	base := Config{Attrs: []string{"authors", "title"}, Q: 3, K: 3, L: 16, Seed: 9}

	var want []string
	for _, workers := range []int{1, 4, 16} {
		results := make(map[ORStrategy][]string)
		for _, strat := range []ORStrategy{BucketPerBit, PostFilter} {
			cfg := base
			cfg.Workers = workers
			cfg.Semantic = &SemanticOption{Schema: schema, W: 3, Mode: ModeOR, ORStrategy: strat}
			b, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := b.Block(d)
			if err != nil {
				t.Fatal(err)
			}
			results[strat] = canonicalBlocks(res.Blocks)
		}
		got := results[BucketPerBit]
		if len(got) == 0 {
			t.Fatalf("workers=%d: no blocks produced", workers)
		}
		if fmt.Sprint(got) != fmt.Sprint(results[PostFilter]) {
			t.Fatalf("workers=%d: OR strategies disagree: %d vs %d blocks",
				workers, len(got), len(results[PostFilter]))
		}
		if want == nil {
			want = got
		} else if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("workers=%d changed the block set: %d vs %d blocks", workers, len(got), len(want))
		}
	}
}

// TestBlockDeterministicOrder asserts the engine's stronger-than-seed
// guarantee: the block *order* (not just the multiset) is identical across
// worker counts.
func TestBlockDeterministicOrder(t *testing.T) {
	d, _ := coraFixture(t, 300)
	var want [][]record.ID
	for _, workers := range []int{1, 3, 8} {
		b, err := New(Config{Attrs: []string{"authors", "title"}, Q: 3, K: 2, L: 12, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Block(d)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res.Blocks
			continue
		}
		if fmt.Sprint(res.Blocks) != fmt.Sprint(want) {
			t.Fatalf("workers=%d changed block order", workers)
		}
	}
}

// TestSparseIDsRejected covers the dense-ID guard: a dataset whose record
// IDs are not 0..n-1 must yield a typed *SparseIDError instead of silently
// blocking with mis-assigned signatures.
func TestSparseIDsRejected(t *testing.T) {
	d := record.NewDataset("sparse")
	d.Append(0, map[string]string{"title": "a record"})
	d.Append(1, map[string]string{"title": "another record"})
	d.Records()[1].ID = 5 // simulate an externally mutated / hand-built dataset

	b, err := New(Config{Attrs: []string{"title"}, Q: 2, K: 2, L: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.Block(d)
	var sparse *SparseIDError
	if !errors.As(err, &sparse) {
		t.Fatalf("Block returned %v, want *SparseIDError", err)
	}
	if sparse.Index != 1 || sparse.ID != 5 || sparse.Dataset != "sparse" {
		t.Fatalf("error fields = %+v", sparse)
	}
	if _, err := NewSigner(Config{Attrs: []string{"title"}, Q: 2, K: 2, L: 4}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateDenseIDs(d); err == nil {
		t.Fatal("ValidateDenseIDs accepted sparse dataset")
	}
	d.Records()[1].ID = 1
	if err := ValidateDenseIDs(d); err != nil {
		t.Fatalf("ValidateDenseIDs rejected dense dataset: %v", err)
	}
	if _, err := b.Block(d); err != nil {
		t.Fatalf("Block failed on repaired dataset: %v", err)
	}
}

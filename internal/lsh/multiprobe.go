package lsh

import (
	"fmt"

	"semblock/internal/blocking"
	"semblock/internal/minhash"
	"semblock/internal/record"
	"semblock/internal/textual"
)

// MultiProbe implements multi-probe LSH blocking (Lv et al., VLDB 2007 —
// the paper's reference [29]), adapted to minhash banding: besides its
// primary bucket in each table, a record is filed under Probes additional
// buckets obtained by replacing one band component with the record's
// *second-minimum* hash value for that function — the value the minhash
// would take if the minimising shingle were missing. Records one shingle
// apart thus collide without extra hash tables, trading bucket volume for
// table count exactly as the original multi-probe trades query probes for
// tables.
type MultiProbe struct {
	cfg MultiProbeConfig
	fam *minhash.Family
}

// MultiProbeConfig configures a multi-probe blocker.
type MultiProbeConfig struct {
	// Attrs, Q, K, L, Seed as in Config.
	Attrs []string
	Q     int
	K, L  int
	Seed  int64
	// Probes is the number of perturbed buckets per table (0 ≤ Probes ≤ K).
	// Probes = 0 degenerates to plain LSH banding.
	Probes int
}

// NewMultiProbe validates the configuration and builds the blocker.
func NewMultiProbe(cfg MultiProbeConfig) (*MultiProbe, error) {
	if len(cfg.Attrs) == 0 {
		return nil, fmt.Errorf("lsh: multiprobe needs blocking attributes")
	}
	if cfg.Q <= 0 {
		return nil, fmt.Errorf("lsh: multiprobe q-gram size must be positive, got %d", cfg.Q)
	}
	if cfg.K <= 0 || cfg.L <= 0 {
		return nil, fmt.Errorf("lsh: multiprobe needs positive k and l, got k=%d l=%d", cfg.K, cfg.L)
	}
	if cfg.Probes < 0 || cfg.Probes > cfg.K {
		return nil, fmt.Errorf("lsh: probes must be in [0,%d], got %d", cfg.K, cfg.Probes)
	}
	return &MultiProbe{cfg: cfg, fam: minhash.NewFamily(cfg.K*cfg.L, cfg.Seed)}, nil
}

// Name implements blocking.Blocker.
func (m *MultiProbe) Name() string { return "lsh-multiprobe" }

// Block files every record under its primary and perturbed band buckets.
func (m *MultiProbe) Block(d *record.Dataset) (*blocking.Result, error) {
	n := d.Len()
	k, l := m.cfg.K, m.cfg.L
	sigs := make([][]uint64, n)
	sig2s := make([][]uint64, n)
	for i := 0; i < n; i++ {
		r := d.Record(record.ID(i))
		grams := textual.QGrams(r.Key(m.cfg.Attrs...), m.cfg.Q)
		sig := make([]uint64, k*l)
		sig2 := make([]uint64, k*l)
		m.fam.Signature2Into(grams, sig, sig2)
		sigs[i], sig2s[i] = sig, sig2
	}
	var blocks [][]record.ID
	probe := make([]uint64, k)
	for table := 0; table < l; table++ {
		buckets := make(map[uint64][]record.ID)
		lo := table * k
		for i := 0; i < n; i++ {
			band := sigs[i][lo : lo+k]
			key := minhash.BandKey(table, band)
			buckets[key] = append(buckets[key], record.ID(i))
			// Perturbations: replace component j with the second minimum.
			for j := 0; j < m.cfg.Probes; j++ {
				if sig2s[i][lo+j] == ^uint64(0) {
					continue // no second-distinct hash to probe with
				}
				copy(probe, band)
				probe[j] = sig2s[i][lo+j]
				pk := minhash.BandKey(table, probe)
				buckets[pk] = append(buckets[pk], record.ID(i))
			}
		}
		for _, ids := range buckets {
			if len(ids) >= 2 {
				blocks = append(blocks, dedupeIDs(ids))
			}
		}
	}
	return blocking.NewResult(m.Name(), blocks), nil
}

// dedupeIDs removes duplicates (a record can reach the same bucket through
// its primary key and a probe) while preserving first-seen order.
func dedupeIDs(ids []record.ID) []record.ID {
	seen := make(map[record.ID]struct{}, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

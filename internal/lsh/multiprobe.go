package lsh

import (
	"fmt"

	"semblock/internal/blocking"
	"semblock/internal/engine"
	"semblock/internal/minhash"
	"semblock/internal/record"
	"semblock/internal/textual"
)

// MultiProbe implements multi-probe LSH blocking (Lv et al., VLDB 2007 —
// the paper's reference [29]), adapted to minhash banding: besides its
// primary bucket in each table, a record is filed under Probes additional
// buckets obtained by replacing one band component with the record's
// *second-minimum* hash value for that function — the value the minhash
// would take if the minimising shingle were missing. Records one shingle
// apart thus collide without extra hash tables, trading bucket volume for
// table count exactly as the original multi-probe trades query probes for
// tables.
type MultiProbe struct {
	cfg MultiProbeConfig
	fam *minhash.Family
}

// MultiProbeConfig configures a multi-probe blocker.
type MultiProbeConfig struct {
	// Attrs, Q, K, L, Seed as in Config.
	Attrs []string
	Q     int
	K, L  int
	Seed  int64
	// Probes is the number of perturbed buckets per table (0 ≤ Probes ≤ K).
	// Probes = 0 degenerates to plain LSH banding.
	Probes int
}

// NewMultiProbe validates the configuration and builds the blocker.
func NewMultiProbe(cfg MultiProbeConfig) (*MultiProbe, error) {
	if len(cfg.Attrs) == 0 {
		return nil, fmt.Errorf("lsh: multiprobe needs blocking attributes")
	}
	if cfg.Q <= 0 {
		return nil, fmt.Errorf("lsh: multiprobe q-gram size must be positive, got %d", cfg.Q)
	}
	if cfg.K <= 0 || cfg.L <= 0 {
		return nil, fmt.Errorf("lsh: multiprobe needs positive k and l, got k=%d l=%d", cfg.K, cfg.L)
	}
	if cfg.Probes < 0 || cfg.Probes > cfg.K {
		return nil, fmt.Errorf("lsh: probes must be in [0,%d], got %d", cfg.K, cfg.Probes)
	}
	return &MultiProbe{cfg: cfg, fam: minhash.NewFamily(cfg.K*cfg.L, cfg.Seed)}, nil
}

// Name implements blocking.Blocker.
func (m *MultiProbe) Name() string { return "lsh-multiprobe" }

// Block files every record under its primary and perturbed band buckets.
// One flat bucket store (engine.Table) is Reset and reused across all l
// tables instead of allocating a fresh map per table, and all 2n signature
// buffers are carved from one backing array; blocks come out in bucket
// first-touch order, so the output is deterministic (the map-backed version
// emitted each table's blocks in map iteration order).
func (m *MultiProbe) Block(d *record.Dataset) (*blocking.Result, error) {
	n := d.Len()
	k, l := m.cfg.K, m.cfg.L
	size := k * l
	sigs := make([][]uint64, n)
	sig2s := make([][]uint64, n)
	backing := make([]uint64, 2*n*size)
	for i := 0; i < n; i++ {
		r := d.Record(record.ID(i))
		grams := textual.QGrams(r.Key(m.cfg.Attrs...), m.cfg.Q)
		sigs[i] = backing[(2*i)*size : (2*i+1)*size : (2*i+1)*size]
		sig2s[i] = backing[(2*i+1)*size : (2*i+2)*size : (2*i+2)*size]
		m.fam.Signature2Into(grams, sigs[i], sig2s[i])
	}
	var blocks [][]record.ID
	probe := make([]uint64, k)
	tb := engine.NewTable(n)
	for table := 0; table < l; table++ {
		tb.Reset()
		lo := table * k
		for i := 0; i < n; i++ {
			band := sigs[i][lo : lo+k]
			tb.Insert(minhash.BandKey(table, band), record.ID(i))
			// Perturbations: replace component j with the second minimum.
			for j := 0; j < m.cfg.Probes; j++ {
				if sig2s[i][lo+j] == ^uint64(0) {
					continue // no second-distinct hash to probe with
				}
				copy(probe, band)
				probe[j] = sig2s[i][lo+j]
				tb.Insert(minhash.BandKey(table, probe), record.ID(i))
			}
		}
		// Members are copied (the table is Reset next round) and then
		// deduplicated: a record reaching one bucket through its primary key
		// and a probe files consecutively, so duplicates are adjacent runs.
		start := len(blocks)
		blocks = engine.AppendBlocks(blocks, tb, 2, true)
		for b := start; b < len(blocks); b++ {
			blocks[b] = dedupeAdjacent(blocks[b])
		}
	}
	return blocking.NewResult(m.Name(), blocks), nil
}

// dedupeAdjacent collapses adjacent duplicate IDs in place. Bucket members
// are in insertion order and all of one record's inserts into a table are
// consecutive, so equal IDs can only appear as adjacent runs.
func dedupeAdjacent(ids []record.ID) []record.ID {
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

package lsh

import (
	"testing"

	"semblock/internal/datagen"
	"semblock/internal/semantic"
	"semblock/internal/taxonomy"
)

// TestStageEquivalence checks that the staged signature path (one Stage per
// record, then SignStaged per table subset) reproduces the unstaged
// Sign/SignComponents/SemSign results exactly, so shared-log indexers block
// identically to per-shard staging.
func TestStageEquivalence(t *testing.T) {
	cfg := datagen.DefaultCoraConfig()
	cfg.Records = 60
	d := datagen.Cora(cfg)
	fn, err := semantic.NewCoraFunction(taxonomy.Bibliographic())
	if err != nil {
		t.Fatal(err)
	}
	schema, err := semantic.BuildSchema(fn, d)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := NewSigner(Config{
		Attrs: []string{"authors", "title"}, Q: 3, K: 3, L: 8, Seed: 11,
		Semantic: &SemanticOption{Schema: schema, W: 3, Mode: ModeOR},
	})
	if err != nil {
		t.Fatal(err)
	}

	tables := []int{1, 4, 7}
	components := signer.TableComponents(tables)
	for _, r := range d.Records() {
		st := signer.Stage(r)
		full := signer.Sign(r)
		staged := signer.SignStaged(st, nil)
		for i := range full {
			if staged[i] != full[i] {
				t.Fatalf("record %d: staged full component %d = %d, direct %d", r.ID, i, staged[i], full[i])
			}
		}
		sub := signer.SignComponents(r, components)
		stagedSub := signer.SignStaged(st, components)
		for _, i := range components {
			if stagedSub[i] != sub[i] {
				t.Fatalf("record %d: staged subset component %d = %d, direct %d", r.ID, i, stagedSub[i], sub[i])
			}
		}
		got, want := st.Sem(), signer.SemSign(r)
		if got.Len() != want.Len() || got.String() != want.String() {
			t.Fatalf("record %d: staged semhash %s, SemSign %s", r.ID, got, want)
		}
	}
}

package lsh

import (
	"fmt"
	"sort"

	"semblock/internal/blocking"
	"semblock/internal/minhash"
	"semblock/internal/record"
	"semblock/internal/textual"
)

// Forest implements LSH-Forest-style blocking (Bawa, Condie & Ganesan,
// WWW 2005 — the paper's reference [5]): instead of a fixed band width k,
// each of the L hash tables is a prefix tree over the record's minhash
// sequence. A bucket that exceeds MaxBlock is split by the next hash
// value, so the effective k adapts per bucket — dense regions get longer,
// more selective prefixes, sparse regions keep short ones.
type Forest struct {
	cfg ForestConfig
	fam *minhash.Family
}

// ForestConfig configures an LSH-Forest blocker.
type ForestConfig struct {
	// Attrs and Q define the shingled textual key, as in Config.
	Attrs []string
	Q     int
	// L is the number of prefix trees.
	L int
	// KMax is the maximum prefix depth (hash functions per tree).
	KMax int
	// MaxBlock is the bucket size that triggers a split; buckets still
	// oversized at depth KMax are emitted as-is.
	MaxBlock int
	// Seed drives the hash functions.
	Seed int64
}

// NewForest validates the configuration and builds the blocker.
func NewForest(cfg ForestConfig) (*Forest, error) {
	if len(cfg.Attrs) == 0 {
		return nil, fmt.Errorf("lsh: forest needs blocking attributes")
	}
	if cfg.Q <= 0 {
		return nil, fmt.Errorf("lsh: forest q-gram size must be positive, got %d", cfg.Q)
	}
	if cfg.L <= 0 || cfg.KMax <= 0 {
		return nil, fmt.Errorf("lsh: forest needs positive l and kmax, got l=%d kmax=%d", cfg.L, cfg.KMax)
	}
	if cfg.MaxBlock < 2 {
		return nil, fmt.Errorf("lsh: forest max block must be ≥ 2, got %d", cfg.MaxBlock)
	}
	return &Forest{cfg: cfg, fam: minhash.NewFamily(cfg.L*cfg.KMax, cfg.Seed)}, nil
}

// Name implements blocking.Blocker.
func (f *Forest) Name() string { return "lsh-forest" }

// Block builds the L prefix trees and emits their leaf buckets.
func (f *Forest) Block(d *record.Dataset) (*blocking.Result, error) {
	n := d.Len()
	size := f.cfg.L * f.cfg.KMax
	sigs := make([][]uint64, n)
	backing := make([]uint64, n*size)
	for i := 0; i < n; i++ {
		r := d.Record(record.ID(i))
		sigs[i] = backing[i*size : (i+1)*size : (i+1)*size]
		f.fam.SignatureInto(textual.QGrams(r.Key(f.cfg.Attrs...), f.cfg.Q), sigs[i])
	}
	var blocks [][]record.ID
	scratch := make([]record.ID, n)
	for tree := 0; tree < f.cfg.L; tree++ {
		// Each tree partitions the records from ID order; split permutes its
		// slice in place, so the scratch is re-initialised per tree.
		for i := range scratch {
			scratch[i] = record.ID(i)
		}
		blocks = f.split(scratch, sigs, tree*f.cfg.KMax, 0, blocks)
	}
	return blocking.NewResult(f.Name(), blocks), nil
}

// split recursively partitions ids by the hash value at the given depth,
// emitting buckets that are small enough (or at maximal depth). ids is
// permuted in place; no per-call map or group slices are allocated: a stable
// sort groups equal hash values into runs — ascending value order, original
// order within a run, exactly the group order the map-backed version
// produced — and each run recurses on its sub-slice.
func (f *Forest) split(ids []record.ID, sigs [][]uint64, base, depth int, blocks [][]record.ID) [][]record.ID {
	if len(ids) < 2 {
		return blocks
	}
	if len(ids) <= f.cfg.MaxBlock || depth == f.cfg.KMax {
		out := make([]record.ID, len(ids))
		copy(out, ids)
		return append(blocks, out)
	}
	at := func(id record.ID) uint64 { return sigs[id][base+depth] }
	sort.SliceStable(ids, func(i, j int) bool { return at(ids[i]) < at(ids[j]) })
	for lo := 0; lo < len(ids); {
		hi := lo + 1
		for hi < len(ids) && at(ids[hi]) == at(ids[lo]) {
			hi++
		}
		blocks = f.split(ids[lo:hi], sigs, base, depth+1, blocks)
		lo = hi
	}
	return blocks
}

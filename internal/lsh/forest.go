package lsh

import (
	"fmt"
	"sort"

	"semblock/internal/blocking"
	"semblock/internal/minhash"
	"semblock/internal/record"
	"semblock/internal/textual"
)

// Forest implements LSH-Forest-style blocking (Bawa, Condie & Ganesan,
// WWW 2005 — the paper's reference [5]): instead of a fixed band width k,
// each of the L hash tables is a prefix tree over the record's minhash
// sequence. A bucket that exceeds MaxBlock is split by the next hash
// value, so the effective k adapts per bucket — dense regions get longer,
// more selective prefixes, sparse regions keep short ones.
type Forest struct {
	cfg ForestConfig
	fam *minhash.Family
}

// ForestConfig configures an LSH-Forest blocker.
type ForestConfig struct {
	// Attrs and Q define the shingled textual key, as in Config.
	Attrs []string
	Q     int
	// L is the number of prefix trees.
	L int
	// KMax is the maximum prefix depth (hash functions per tree).
	KMax int
	// MaxBlock is the bucket size that triggers a split; buckets still
	// oversized at depth KMax are emitted as-is.
	MaxBlock int
	// Seed drives the hash functions.
	Seed int64
}

// NewForest validates the configuration and builds the blocker.
func NewForest(cfg ForestConfig) (*Forest, error) {
	if len(cfg.Attrs) == 0 {
		return nil, fmt.Errorf("lsh: forest needs blocking attributes")
	}
	if cfg.Q <= 0 {
		return nil, fmt.Errorf("lsh: forest q-gram size must be positive, got %d", cfg.Q)
	}
	if cfg.L <= 0 || cfg.KMax <= 0 {
		return nil, fmt.Errorf("lsh: forest needs positive l and kmax, got l=%d kmax=%d", cfg.L, cfg.KMax)
	}
	if cfg.MaxBlock < 2 {
		return nil, fmt.Errorf("lsh: forest max block must be ≥ 2, got %d", cfg.MaxBlock)
	}
	return &Forest{cfg: cfg, fam: minhash.NewFamily(cfg.L*cfg.KMax, cfg.Seed)}, nil
}

// Name implements blocking.Blocker.
func (f *Forest) Name() string { return "lsh-forest" }

// Block builds the L prefix trees and emits their leaf buckets.
func (f *Forest) Block(d *record.Dataset) (*blocking.Result, error) {
	n := d.Len()
	sigs := make([][]uint64, n)
	for i := 0; i < n; i++ {
		r := d.Record(record.ID(i))
		grams := textual.QGrams(r.Key(f.cfg.Attrs...), f.cfg.Q)
		sigs[i] = f.fam.Signature(grams)
	}
	var blocks [][]record.ID
	all := make([]record.ID, n)
	for i := range all {
		all[i] = record.ID(i)
	}
	for tree := 0; tree < f.cfg.L; tree++ {
		base := tree * f.cfg.KMax
		blocks = f.split(all, sigs, base, 0, blocks)
	}
	return blocking.NewResult(f.Name(), blocks), nil
}

// split recursively partitions ids by the hash value at the given depth,
// emitting buckets that are small enough (or at maximal depth).
func (f *Forest) split(ids []record.ID, sigs [][]uint64, base, depth int, blocks [][]record.ID) [][]record.ID {
	if len(ids) < 2 {
		return blocks
	}
	if len(ids) <= f.cfg.MaxBlock || depth == f.cfg.KMax {
		out := make([]record.ID, len(ids))
		copy(out, ids)
		blocks = append(blocks, out)
		return blocks
	}
	groups := make(map[uint64][]record.ID)
	for _, id := range ids {
		v := sigs[id][base+depth]
		groups[v] = append(groups[v], id)
	}
	// Deterministic order over group keys.
	keys := make([]uint64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		blocks = f.split(groups[k], sigs, base, depth+1, blocks)
	}
	return blocks
}

package lsh

import (
	"fmt"
	"runtime"
	"sync"

	"semblock/internal/minhash"
	"semblock/internal/record"
	"semblock/internal/semantic"
	"semblock/internal/textual"
)

// Signer computes the per-record signature material of an (SA-)LSH
// configuration: the k·l-component minhash signature, the semhash signature
// (for SA-LSH), and the w semantic-bit choices of every hash table. It is
// the stateless core shared by the batch Blocker and the streaming Indexer
// (internal/stream): both paths derive bucket membership exclusively from a
// Signer, which is what guarantees that a streamed index snapshot and a
// batch Block run over the same records produce the same blocks.
//
// Signing is interned: a record's q-grams are streamed straight out of the
// normalised blocking key (textual.VisitQGrams) into base hashes
// (minhash.BaseHash) — no gram strings and no gram slice are materialised —
// and the scratch hash buffers are pooled across records, so a steady-state
// Sign costs one normalised-key allocation plus the returned signature.
type Signer struct {
	cfg  Config
	fam  *minhash.Family
	bits [][]int // per-table semantic bit choices; nil without Semantic

	hashPool sync.Pool // *[]uint64 scratch buffers for shingle base hashes
}

// NewSigner validates the configuration and precomputes the per-table
// semantic bit choices.
func NewSigner(cfg Config) (*Signer, error) {
	if len(cfg.Attrs) == 0 {
		return nil, fmt.Errorf("lsh: no blocking attributes configured")
	}
	if cfg.Q <= 0 {
		return nil, fmt.Errorf("lsh: q-gram size must be positive, got %d", cfg.Q)
	}
	if cfg.K <= 0 || cfg.L <= 0 {
		return nil, fmt.Errorf("lsh: k and l must be positive, got k=%d l=%d", cfg.K, cfg.L)
	}
	if s := cfg.Semantic; s != nil {
		if s.Schema == nil {
			return nil, fmt.Errorf("lsh: semantic option requires a schema")
		}
		if s.W <= 0 || s.W > s.Schema.Bits() {
			return nil, fmt.Errorf("lsh: w must be in [1,%d], got %d", s.Schema.Bits(), s.W)
		}
	}
	s := &Signer{cfg: cfg, fam: minhash.NewFamily(cfg.K*cfg.L, cfg.Seed)}
	if sem := cfg.Semantic; sem != nil {
		s.bits = make([][]int, cfg.L)
		for t := 0; t < cfg.L; t++ {
			bitTable := t
			if sem.GlobalBits {
				bitTable = 0
			}
			s.bits[t] = selectBits(cfg.Seed, bitTable, sem.W, sem.Schema.Bits())
		}
	}
	return s, nil
}

// Config returns the signer's configuration.
func (s *Signer) Config() Config { return s.cfg }

// Semantic reports whether the signer is configured for SA-LSH.
func (s *Signer) Semantic() bool { return s.cfg.Semantic != nil }

// getHashes hands out a pooled scratch buffer for shingle base hashes;
// putHashes returns it. Pooling keeps steady-state signing free of scratch
// allocations no matter how many goroutines sign concurrently.
func (s *Signer) getHashes() []uint64 {
	if p, ok := s.hashPool.Get().(*[]uint64); ok {
		return (*p)[:0]
	}
	return make([]uint64, 0, 128)
}

func (s *Signer) putHashes(h []uint64) {
	s.hashPool.Put(&h)
}

// AppendKeyHashes appends the base hashes of the record's q-gram shingles
// to dst and returns the extended slice — the interned form of
// minhash.ShingleHashes(textual.QGrams(key, q)): grams are hashed as views
// into the normalised key, never materialised as strings.
func (s *Signer) AppendKeyHashes(r *record.Record, dst []uint64) []uint64 {
	textual.VisitQGrams(r.Key(s.cfg.Attrs...), s.cfg.Q, func(g string) {
		dst = append(dst, minhash.BaseHash(g))
	})
	return dst
}

// Sign computes the k·l-component minhash signature of one record.
func (s *Signer) Sign(r *record.Record) []uint64 {
	sig := make([]uint64, s.fam.Size())
	s.SignInto(r, sig)
	return sig
}

// SignInto computes the signature into sig, which must have length
// fam.Size() — the buffer-reusing form of Sign.
func (s *Signer) SignInto(r *record.Record, sig []uint64) {
	hashes := s.AppendKeyHashes(r, s.getHashes())
	s.fam.SignatureFromHashesInto(hashes, sig)
	s.putHashes(hashes)
}

// TableComponents returns the signature-component indices the given tables
// consume — the k-component band of each — for use with SignComponents.
func (s *Signer) TableComponents(tables []int) []int {
	out := make([]int, 0, len(tables)*s.cfg.K)
	for _, t := range tables {
		for j := 0; j < s.cfg.K; j++ {
			out = append(out, t*s.cfg.K+j)
		}
	}
	return out
}

// SignComponents computes only the given signature components (from
// TableComponents) of one record, leaving every other component at the
// empty-set sentinel. The result has Sign's k·l layout, so Band and
// BucketKeys work unchanged for the covered tables — reading any other
// table's band is invalid. Table-subset indexers (stream.WithTables) use
// this to pay only their share of the minhash work: a family of shards
// partitioning the tables collectively performs the same hashing as one
// full signer.
func (s *Signer) SignComponents(r *record.Record, components []int) []uint64 {
	sig := make([]uint64, s.fam.Size())
	s.SignComponentsInto(r, components, sig)
	return sig
}

// SignComponentsInto computes the given components (all of them when
// components is nil) into a caller-owned buffer of length fam.Size() — the
// arena-backed form batch insertion uses to sign a whole mini-batch into one
// backing array.
func (s *Signer) SignComponentsInto(r *record.Record, components []int, sig []uint64) {
	hashes := s.AppendKeyHashes(r, s.getHashes())
	if components == nil {
		s.fam.SignatureFromHashesInto(hashes, sig)
	} else {
		s.fam.SignatureSubsetFromHashesInto(hashes, components, sig)
	}
	s.putHashes(hashes)
}

// Stage is the shard-independent half of one record's signature work: the
// base hashes of its q-gram shingles plus its semhash signature. Computing a
// record's Stage is the expensive, table-count-independent part of signing —
// attribute concatenation, q-gram extraction, string hashing, and the
// taxonomy walk behind the semhash — so a Stage computed once can be shared
// by any number of table-subset indexers, each deriving only its own minhash
// components via SignStaged. stream.SharedLog.Append computes one Stage per
// appended record — hash storage carved from a per-batch arena via
// StageAppend — and hands the staged batch to every attached shard; the
// stages are per-batch hand-offs, not retained state.
type Stage struct {
	hashes []uint64 // base hashes of the record's q-grams
	sem    semantic.BitVec
}

// Sem returns the staged semhash signature (the zero BitVec without a
// semantic option; callers must not inspect it then).
func (st *Stage) Sem() semantic.BitVec { return st.sem }

// Stage computes the shard-independent signature stage of one record:
// q-gram shingling of the blocking key, the shingles' base hashes, and the
// semhash signature. SignStaged consumes the result.
func (s *Signer) Stage(r *record.Record) *Stage {
	st, _ := s.StageAppend(r, nil)
	return &st
}

// StageAppend computes a record's signature stage, storing the hash
// material — and, for SA-LSH, the semhash signature's words — by appending
// to arena, and returns the stage plus the extended arena. Batch staging
// (stream.SharedLog.Append) threads one growing arena through a whole
// mini-batch, so staging n records costs O(log n) allocations instead of
// one hash buffer plus one semhash vector per record; a stage's views stay
// valid even when a later append reallocates the arena (the abandoned
// backing array is untouched).
//
//semblock:hotpath
func (s *Signer) StageAppend(r *record.Record, arena []uint64) (Stage, []uint64) {
	off := len(arena)
	arena = s.AppendKeyHashes(r, arena)
	hashes := arena[off:len(arena):len(arena)]
	var sem semantic.BitVec
	sem, arena = s.AppendSemSign(r, arena)
	return Stage{hashes: hashes, sem: sem}, arena
}

// SignStaged derives minhash signature components from a precomputed Stage:
// all k·l components when components is nil (equal to Sign), or only the
// given TableComponents subset (equal to SignComponents, every other
// component left at the empty-set sentinel). Staging and signing compose to
// exactly the unstaged results, so staged and unstaged records may be mixed
// freely in one index.
func (s *Signer) SignStaged(st *Stage, components []int) []uint64 {
	sig := make([]uint64, s.fam.Size())
	s.SignStagedInto(st, components, sig)
	return sig
}

// SignStagedInto is SignStaged into a caller-owned buffer of length
// fam.Size(), for arena-backed batch signing (stream.Indexer.InsertStaged
// carves all of a batch's signatures from one backing array).
//
//semblock:hotpath
func (s *Signer) SignStagedInto(st *Stage, components []int, sig []uint64) {
	if components == nil {
		s.fam.SignatureFromHashesInto(st.hashes, sig)
	} else {
		s.fam.SignatureSubsetFromHashesInto(st.hashes, components, sig)
	}
}

// SemSign computes the semhash signature of one record. Without a semantic
// option it returns the zero BitVec, which callers must not inspect.
func (s *Signer) SemSign(r *record.Record) semantic.BitVec {
	if s.cfg.Semantic == nil {
		return semantic.BitVec{}
	}
	return s.cfg.Semantic.Schema.Signature(r)
}

// AppendSemSign is the arena-backed form of SemSign: the signature's words
// are appended to arena and both are returned. Without a semantic option it
// returns the zero BitVec and the arena untouched, so batch paths can call
// it unconditionally.
func (s *Signer) AppendSemSign(r *record.Record, arena []uint64) (semantic.BitVec, []uint64) {
	if s.cfg.Semantic == nil {
		return semantic.BitVec{}, arena
	}
	return s.cfg.Semantic.Schema.AppendSignature(r, arena)
}

// SignDataset computes the minhash signatures of every record in parallel,
// indexed by record ID. All n signatures are carved from one backing array,
// so the signature stage of a batch build costs O(1) allocations per worker
// instead of O(n). The indexing relies on record IDs being dense 0..n-1
// (the invariant Dataset.Append maintains); a dataset violating it yields a
// *SparseIDError instead of silently mis-assigning signatures.
func (s *Signer) SignDataset(d *record.Dataset) ([][]uint64, error) {
	if err := ValidateDenseIDs(d); err != nil {
		return nil, err
	}
	n := d.Len()
	sigs := make([][]uint64, n)
	if n == 0 {
		return sigs, nil
	}
	size := s.fam.Size()
	backing := make([]uint64, n*size)
	for i := 0; i < n; i++ {
		sigs[i] = backing[i*size : (i+1)*size : (i+1)*size]
	}
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			hashes := make([]uint64, 0, 128)
			for i := lo; i < hi; i++ {
				hashes = s.AppendKeyHashes(d.Record(record.ID(i)), hashes[:0])
				s.fam.SignatureFromHashesInto(hashes, sigs[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return sigs, nil
}

// Band returns the k-slice of a full signature belonging to one hash table.
func (s *Signer) Band(table int, sig []uint64) []uint64 {
	return sig[table*s.cfg.K : (table+1)*s.cfg.K]
}

// TableBits returns the semantic bit choice of one hash table (nil without
// a semantic option). The slice is shared; callers must not mutate it.
func (s *Signer) TableBits(table int) []int {
	if s.bits == nil {
		return nil
	}
	return s.bits[table]
}

// BucketKeys appends to dst the bucket keys the record files under in one
// hash table and returns the extended slice. The keying is the normalised
// bucket-per-bit form: plain LSH yields the band key; AND mode yields the
// band key iff all w selected semhash bits are set (nothing otherwise); OR
// mode yields one mixed key per selected set bit. Two records collide in a
// table iff they share a key, so this single method defines block
// membership for both batch and streaming construction.
//
//semblock:hotpath
func (s *Signer) BucketKeys(table int, sig []uint64, sem semantic.BitVec, dst []uint64) []uint64 {
	key := minhash.BandKey(table, s.Band(table, sig))
	opt := s.cfg.Semantic
	switch {
	case opt == nil:
		dst = append(dst, key)
	case opt.Mode == ModeAND:
		if allBitsSet(sem, s.bits[table]) {
			dst = append(dst, key)
		}
	default: // ModeOR: one sub-bucket per selected set bit
		for _, bit := range s.bits[table] {
			if sem.Get(bit) {
				dst = append(dst, mixBit(key, bit))
			}
		}
	}
	return dst
}

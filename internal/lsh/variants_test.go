package lsh

import (
	"testing"

	"semblock/internal/datagen"
	"semblock/internal/eval"
	"semblock/internal/record"
)

func TestNewForestValidation(t *testing.T) {
	cases := []ForestConfig{
		{Attrs: nil, Q: 2, L: 2, KMax: 4, MaxBlock: 10},
		{Attrs: []string{"t"}, Q: 0, L: 2, KMax: 4, MaxBlock: 10},
		{Attrs: []string{"t"}, Q: 2, L: 0, KMax: 4, MaxBlock: 10},
		{Attrs: []string{"t"}, Q: 2, L: 2, KMax: 0, MaxBlock: 10},
		{Attrs: []string{"t"}, Q: 2, L: 2, KMax: 4, MaxBlock: 1},
	}
	for i, cfg := range cases {
		if _, err := NewForest(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestForestIdenticalRecordsCoBlock(t *testing.T) {
	d := record.NewDataset("f")
	d.Append(0, map[string]string{"title": "entity resolution blocking"})
	d.Append(0, map[string]string{"title": "entity resolution blocking"})
	d.Append(1, map[string]string{"title": "a completely different string"})
	f, err := NewForest(ForestConfig{Attrs: []string{"title"}, Q: 2, L: 3, KMax: 8, MaxBlock: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Block(d)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "lsh-forest" {
		t.Errorf("Name = %q", f.Name())
	}
	if !res.Covers(0, 1) {
		t.Error("identical records must share a forest leaf")
	}
}

// TestForestAdaptiveDepth verifies the self-tuning property: with a tight
// MaxBlock, dense buckets are split deeper so no emitted block exceeds the
// cap unless the prefix is exhausted by identical signatures.
func TestForestAdaptiveDepth(t *testing.T) {
	cfg := datagen.DefaultCoraConfig()
	cfg.Records = 300
	d := datagen.Cora(cfg)
	// MaxBlock=40 accommodates Cora's large duplicate clusters: a split
	// cap far below the cluster size necessarily severs within-cluster
	// pairs (the forest's selectivity/recall trade-off).
	f, err := NewForest(ForestConfig{Attrs: []string{"authors", "title"}, Q: 3, L: 6, KMax: 12, MaxBlock: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Block(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBlocks() == 0 {
		t.Fatal("forest produced no blocks")
	}
	oversized := 0
	for _, b := range res.Blocks {
		if len(b) > 40 {
			oversized++
		}
	}
	// Oversized leaves can only come from signature-identical groups;
	// they must be rare.
	if frac := float64(oversized) / float64(res.NumBlocks()); frac > 0.2 {
		t.Errorf("%.2f of forest blocks exceed MaxBlock", frac)
	}
	m, err := eval.Evaluate(res, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.PC < 0.5 {
		t.Errorf("forest PC = %v; expected reasonable recall", m.PC)
	}
	// The adaptive depth must still prune the candidate space hard.
	if m.RR < 0.8 {
		t.Errorf("forest RR = %v; expected strong reduction", m.RR)
	}
}

func TestForestDeterminism(t *testing.T) {
	cfg := datagen.DefaultCoraConfig()
	cfg.Records = 150
	d := datagen.Cora(cfg)
	mk := func() *eval.Metrics {
		f, err := NewForest(ForestConfig{Attrs: []string{"title"}, Q: 2, L: 2, KMax: 6, MaxBlock: 5, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Block(d)
		if err != nil {
			t.Fatal(err)
		}
		m, err := eval.Evaluate(res, d)
		if err != nil {
			t.Fatal(err)
		}
		return &m
	}
	a, b := mk(), mk()
	if a.CandidatePairs != b.CandidatePairs || a.PC != b.PC {
		t.Error("forest blocking not deterministic")
	}
}

func TestNewMultiProbeValidation(t *testing.T) {
	cases := []MultiProbeConfig{
		{Attrs: nil, Q: 2, K: 2, L: 2},
		{Attrs: []string{"t"}, Q: 0, K: 2, L: 2},
		{Attrs: []string{"t"}, Q: 2, K: 0, L: 2},
		{Attrs: []string{"t"}, Q: 2, K: 2, L: 0},
		{Attrs: []string{"t"}, Q: 2, K: 2, L: 2, Probes: 3},
		{Attrs: []string{"t"}, Q: 2, K: 2, L: 2, Probes: -1},
	}
	for i, cfg := range cases {
		if _, err := NewMultiProbe(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestMultiProbeZeroProbesMatchesPlainLSH: with Probes=0 the candidate set
// must equal plain banding with the same seed.
func TestMultiProbeZeroProbesMatchesPlainLSH(t *testing.T) {
	cfg := datagen.DefaultCoraConfig()
	cfg.Records = 200
	d := datagen.Cora(cfg)
	plain, err := New(Config{Attrs: []string{"title"}, Q: 2, K: 3, L: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := NewMultiProbe(MultiProbeConfig{Attrs: []string{"title"}, Q: 2, K: 3, L: 5, Seed: 4, Probes: 0})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Block(d)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := mp.Block(d)
	if err != nil {
		t.Fatal(err)
	}
	pp, pm := rp.CandidatePairs(), rm.CandidatePairs()
	if pp.Len() != pm.Len() || pp.Intersect(pm) != pp.Len() {
		t.Errorf("probes=0 pairs (%d) differ from plain LSH pairs (%d)", pm.Len(), pp.Len())
	}
	if mp.Name() != "lsh-multiprobe" {
		t.Errorf("Name = %q", mp.Name())
	}
}

// TestMultiProbeIncreasesRecall: probing must only add candidate pairs
// (superset) and should recover true matches at fewer tables.
func TestMultiProbeIncreasesRecall(t *testing.T) {
	cfg := datagen.DefaultCoraConfig()
	cfg.Records = 400
	d := datagen.Cora(cfg)
	truth := eval.TruthSet(d)
	base := MultiProbeConfig{Attrs: []string{"authors", "title"}, Q: 3, K: 4, L: 4, Seed: 11}

	var prevPairs int
	var prevPC float64
	for _, probes := range []int{0, 2, 4} {
		c := base
		c.Probes = probes
		mp, err := NewMultiProbe(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mp.Block(d)
		if err != nil {
			t.Fatal(err)
		}
		m := eval.EvaluateWithTruth(res, d, truth)
		if probes > 0 {
			if res.CandidatePairs().Len() < prevPairs {
				t.Errorf("probes=%d shrank the candidate set", probes)
			}
			if m.PC < prevPC {
				t.Errorf("probes=%d reduced PC: %v -> %v", probes, prevPC, m.PC)
			}
		}
		prevPairs = res.CandidatePairs().Len()
		prevPC = m.PC
	}
}

// TestMultiProbeSupersetProperty asserts pair-level monotonicity directly:
// every plain-LSH pair survives probing.
func TestMultiProbeSupersetProperty(t *testing.T) {
	cfg := datagen.DefaultCoraConfig()
	cfg.Records = 150
	d := datagen.Cora(cfg)
	mk := func(probes int) record.PairSet {
		mp, err := NewMultiProbe(MultiProbeConfig{Attrs: []string{"title"}, Q: 2, K: 3, L: 3, Seed: 6, Probes: probes})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mp.Block(d)
		if err != nil {
			t.Fatal(err)
		}
		return res.CandidatePairs()
	}
	without := mk(0)
	with := mk(3)
	if with.Intersect(without) != without.Len() {
		t.Error("multi-probe candidates must be a superset of plain candidates")
	}
}

module semblock

go 1.22

// Command semblock blocks a CSV dataset from the command line with LSH or
// SA-LSH and prints either quality metrics (when the CSV carries an
// entity_id ground-truth column) or the candidate pairs.
//
// Usage:
//
//	semblock -input records.csv -attrs title,authors -q 4 -k 4 -l 63
//	semblock -input voters.csv -attrs first_name,last_name -semantic voter
//	semblock -demo cora          # generate and block a synthetic dataset
//	semblock stream -demo cora -batch 64   # incremental/streaming blocking
//
// The -semantic flag enables SA-LSH with one of the built-in domain
// semantic functions ("cora": Table 1 missing-value patterns over
// journal/booktitle/institution; "voter": gender/race/ethnic code mapping).
//
// The "stream" subcommand feeds the dataset through the incremental
// indexer in mini-batches instead of one batch Block call, printing either
// the candidate pairs as they are discovered (-pairs) or a progress line
// per batch plus a final snapshot summary with insert throughput.
//
// The "pipeline" subcommand chains blocking → optional meta-blocking
// pruning → optional matching into one run and reports per-stage counts
// and timings:
//
//	semblock pipeline -demo cora -semantic cora -meta CBS/WEP \
//	    -match title=0.6,authors=0.4 -threshold 0.55
//	semblock pipeline -demo cora -match title=1 -stream -batch 128
//
// The "serve" subcommand runs the multi-tenant blocking service: named
// collections backed by sharded streaming indexes, an HTTP JSON API
// (create/ingest/candidates/snapshot/resolve/compact plus /healthz and
// /metrics), periodic snapshot checkpoints into -data-dir, automatic
// segment compaction once a chain crosses -compact-segments/-compact-bytes,
// restore-on-boot, and graceful shutdown (with a final checkpoint) on
// SIGINT/SIGTERM. Observability is built in: structured request logs
// (-log-format text|json, -log-level), per-request traces surfaced via the
// X-Semblock-Trace header and GET /debug/traces, slow-request warnings with
// a per-stage span breakdown (-slow-request-ms), and an optional pprof
// listener on a separate address (-debug-addr):
//
//	semblock serve -addr :8080 -data-dir /var/lib/semblock \
//	    -shards 4 -checkpoint 30s -compact-segments 32 \
//	    -log-format json -slow-request-ms 250 -debug-addr 127.0.0.1:6060
//
// The "compact" subcommand compacts persisted collections offline — the
// same rewrite the serve loop performs, for data directories of a server
// that is not running:
//
//	semblock compact -data-dir /var/lib/semblock            # all collections
//	semblock compact -data-dir /var/lib/semblock -collection pubs
//
// The "bench serve" subcommand runs the serving-layer load harness: it
// ingests a synthetic corpus into one in-process collection in mini-batches
// and reports ingest throughput plus batch/drain latency quantiles:
//
//	semblock bench serve -records 1000000 -batch 1024 -shards 4
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"semblock"
	"semblock/internal/datagen"
	"semblock/internal/experiments"
	"semblock/internal/lsh"
	"semblock/internal/obs"
	"semblock/internal/record"
)

func main() {
	var err error
	switch {
	case len(os.Args) > 1 && os.Args[1] == "stream":
		err = runStream(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "pipeline":
		err = runPipeline(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "serve":
		err = runServe(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "compact":
		err = runCompact(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "tail":
		err = runTail(os.Args[2:])
	case len(os.Args) > 2 && os.Args[1] == "bench" && os.Args[2] == "serve":
		err = runBenchServe(os.Args[3:])
	default:
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "semblock:", err)
		os.Exit(1)
	}
}

// runBenchServe implements the "bench serve" subcommand: the serving-layer
// load harness. It ingests a synthetic corpus into one in-process collection
// in mini-batches — exercising the shared-log staging, per-shard table
// builds, striped pair dedup and candidate drains the HTTP ingest path runs
// — and reports ingest throughput plus batch/drain latency quantiles:
//
//	semblock bench serve -records 1000000 -batch 1024 -shards 4
func runBenchServe(args []string) error {
	fs := flag.NewFlagSet("semblock bench serve", flag.ExitOnError)
	var (
		records    = fs.Int("records", 1_000_000, "records to ingest")
		batch      = fs.Int("batch", 1024, "records per ingest batch")
		shards     = fs.Int("shards", 4, "table-shard count of the collection")
		workers    = fs.Int("workers", 0, "signature worker pool cap (0 = runtime default)")
		drainEvery = fs.Int("drain-every", 1, "drain candidates every N batches (<0 = only at the end)")
		seed       = fs.Int64("seed", 1, "synthetic corpus seed")
		quiet      = fs.Bool("quiet", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.LoadConfig{
		Records: *records, Batch: *batch, Shards: *shards,
		Workers: *workers, DrainEvery: *drainEvery, Seed: *seed,
	}
	if !*quiet {
		cfg.Progress = func(s string) { fmt.Fprintln(os.Stderr, "bench serve:", s) }
	}
	res, err := experiments.LoadBench(cfg)
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}

// runServe implements the "serve" subcommand: the long-lived multi-tenant
// blocking service over the streaming engine.
func runServe(args []string) error {
	fs := flag.NewFlagSet("semblock serve", flag.ExitOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		dataDir      = fs.String("data-dir", "", "snapshot persistence directory (empty = in-memory only)")
		shards       = fs.Int("shards", 1, "default table-shard count for collections that do not set one")
		checkpoint   = fs.Duration("checkpoint", 30*time.Second, "checkpoint interval (requires -data-dir; 0 = only on shutdown)")
		compactSegs  = fs.Int("compact-segments", 32, "auto-compact a collection once its chain exceeds this many segments (0 = never by count)")
		compactBytes = fs.Int64("compact-bytes", 0, "auto-compact a collection once the segments appended since its last compaction exceed this many bytes (0 = never by size)")
		logFormat    = fs.String("log-format", "text", "structured log format: text or json")
		logLevel     = fs.String("log-level", "info", "log level: debug, info, warn or error")
		slowMS       = fs.Int64("slow-request-ms", 0, "log requests slower than this at WARN with a span breakdown (0 = never)")
		debugAddr    = fs.String("debug-addr", "", "separate pprof/debug listener address, e.g. localhost:6060 (empty = disabled)")
		traceBuf     = fs.Int("trace-buffer", 0, "completed request traces retained for GET /debug/traces (0 = default 64)")
		hookTimeout  = fs.Duration("webhook-timeout", 0, "webhook delivery attempt timeout (0 = default 10s)")
		hookRetries  = fs.Int("webhook-retries", 0, "webhook redelivery attempts per batch beyond the first (0 = default 5)")
		hookBackoff  = fs.Duration("webhook-backoff", 0, "first webhook retry delay, doubling per retry (0 = default 100ms)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	// Library-level diagnostics (restore warnings etc.) flow through
	// slog.Default, so the configured handler sees everything.
	slog.SetDefault(logger)

	opts := []semblock.ServerOption{semblock.WithServerLogger(logger)}
	if *dataDir != "" {
		opts = append(opts, semblock.WithDataDir(*dataDir))
		opts = append(opts, semblock.WithCompaction(semblock.CompactionPolicy{
			MaxSegments: *compactSegs, MaxBytes: *compactBytes,
		}))
	}
	if *shards > 0 {
		opts = append(opts, semblock.WithDefaultShards(*shards))
	}
	if *slowMS > 0 {
		opts = append(opts, semblock.WithSlowRequestThreshold(time.Duration(*slowMS)*time.Millisecond))
	}
	if *traceBuf > 0 {
		opts = append(opts, semblock.WithTraceBuffer(*traceBuf))
	}
	if *hookTimeout > 0 || *hookRetries > 0 || *hookBackoff > 0 {
		opts = append(opts, semblock.WithWebhookDefaults(semblock.WebhookDefaults{
			Timeout: *hookTimeout, MaxRetries: *hookRetries, Backoff: *hookBackoff,
		}))
	}
	srv, err := semblock.NewServer(opts...)
	if err != nil {
		return err
	}
	if n := len(srv.List()); n > 0 {
		logger.Info("restored collections", "count", n, "data_dir", *dataDir, "collections", strings.Join(srv.List(), ", "))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		// The profiling endpoints live on their own listener so they can be
		// bound to localhost (or firewalled) independently of the API port.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
		defer debugSrv.Close()
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Bound how long a stalled client can hold a handler. WriteTimeout
		// caps the whole request (body read included), so it must leave
		// room for large bulk-JSONL ingests over slow links; it exists
		// mainly so a wedged candidates-drain response — which holds the
		// collection's fallible-drain slot and turns later drains into
		// 503s — cannot live forever.
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	stopCheckpoints := make(chan struct{})
	checkpointsDone := make(chan struct{})
	go func() {
		defer close(checkpointsDone)
		if *dataDir == "" {
			<-stopCheckpoints
			return
		}
		srv.CheckpointEvery(*checkpoint, stopCheckpoints, func(err error) {
			logger.Error("checkpoint failed", "err", err)
		})
	}()

	select {
	case err := <-errCh:
		close(stopCheckpoints)
		<-checkpointsDone
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	// Stop push delivery first: webhook workers finish their in-flight
	// attempt (the final checkpoint below captures their last acknowledged
	// cursors) and SSE/long-poll consumers are released, so the HTTP
	// drain below is not held open by intentionally-infinite streams.
	srv.StopDelivery()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	close(stopCheckpoints) // triggers the final checkpoint
	<-checkpointsDone
	if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return shutdownErr
}

// runCompact implements the "compact" subcommand: offline segment-chain
// compaction of persisted collections. Each collection is restored from its
// directory — a full index replay, deliberately: the rewrite only happens
// after the chain has proven loadable end to end, which is the validation
// an operator wants before discarding the old generation (a faster
// records-only streaming rewrite would skip exactly that check). The
// server must not be running against the same data dir — offline
// compaction has no way to serialise with its checkpoints.
func runCompact(args []string) error {
	fs := flag.NewFlagSet("semblock compact", flag.ExitOnError)
	var (
		dataDir = fs.String("data-dir", "", "server data directory (required)")
		name    = fs.String("collection", "", "compact only this collection (default: every collection found)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("compact needs -data-dir DIR")
	}
	entries, err := os.ReadDir(*dataDir)
	if err != nil {
		return fmt.Errorf("read data dir: %w", err)
	}
	compacted := 0
	for _, e := range entries {
		if !e.IsDir() || (*name != "" && e.Name() != *name) {
			continue
		}
		dir := filepath.Join(*dataDir, e.Name())
		if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
			continue // not a collection directory
		}
		c, err := semblock.LoadCollection(dir)
		if err != nil {
			return fmt.Errorf("load %s: %w", e.Name(), err)
		}
		res, err := c.Compact(dir)
		if err != nil {
			return fmt.Errorf("compact %s: %w", e.Name(), err)
		}
		fmt.Printf("%s: %d records, %d segments (%d bytes) -> %d segments (%d bytes), generation %d, %v\n",
			res.Collection, res.Records, res.SegmentsBefore, res.BytesBefore,
			res.SegmentsAfter, res.BytesAfter, res.Generation,
			res.Duration.Round(time.Millisecond))
		compacted++
	}
	if *name != "" && compacted == 0 {
		return fmt.Errorf("no collection %q under %s", *name, *dataDir)
	}
	if compacted == 0 {
		fmt.Printf("no collections under %s\n", *dataDir)
	}
	return nil
}

// runTail implements the "tail" subcommand: a terminal SSE client for a
// consumer group's candidate stream. Each delivered pair is printed as
// "left,right" on its own line; the stream's delivery is acknowledged
// server-side as it is written, so re-running tail resumes at the group's
// durable cursor:
//
//	semblock tail -addr http://localhost:8080 -collection pubs -group etl -create
func runTail(args []string) error {
	fs := flag.NewFlagSet("semblock tail", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "http://localhost:8080", "server base URL")
		collection = fs.String("collection", "", "collection to tail (required)")
		group      = fs.String("group", "default", "consumer group to drain")
		create     = fs.Bool("create", false, "create the group first if it does not exist")
		from       = fs.String("from", "start", "where a -create'd group starts: 'start' replays everything, 'end' tails new pairs only")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *collection == "" {
		return errors.New("tail: -collection is required")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	base := strings.TrimRight(*addr, "/") + "/v1/collections/" + *collection + "/consumers"

	if *create {
		body := strings.NewReader(fmt.Sprintf(`{"group":%q,"from":%q}`, *group, *from))
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base, body)
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return fmt.Errorf("tail: create group: %w", err)
		}
		resp.Body.Close()
		// 409 means the group already exists — exactly what -create wants.
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
			return fmt.Errorf("tail: create group: server answered %s", resp.Status)
		}
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/"+*group+"/stream", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("tail: connect: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("tail: server answered %s", resp.Status)
	}

	// Minimal SSE parse: accumulate "event:"/"data:" until the blank
	// frame terminator, print pairs, note cursor handshakes on stderr.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	event, data := "", ""
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			switch event {
			case "cursor":
				fmt.Fprintf(os.Stderr, "tail: subscribed %s/%s %s\n", *collection, *group, data)
			case "pairs":
				var batch struct {
					Pairs [][2]record.ID `json:"pairs"`
				}
				if err := json.Unmarshal([]byte(data), &batch); err != nil {
					return fmt.Errorf("tail: decode pairs event: %w", err)
				}
				for _, p := range batch.Pairs {
					fmt.Fprintf(out, "%d,%d\n", p[0], p[1])
				}
				out.Flush()
			}
			event, data = "", ""
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("tail: stream: %w", err)
	}
	return nil
}

func run() error {
	var (
		input    = flag.String("input", "", "input CSV (header row; optional entity_id column)")
		demo     = flag.String("demo", "", "generate a synthetic dataset instead: 'cora' or 'voter'")
		attrsArg = flag.String("attrs", "", "comma-separated blocking attributes")
		q        = flag.Int("q", 2, "q-gram size")
		k        = flag.Int("k", 4, "minhash functions per hash table")
		l        = flag.Int("l", 16, "number of hash tables")
		w        = flag.Int("w", 0, "w-way semantic hash width (0 = half the signature bits)")
		mode     = flag.String("mode", "or", "w-way composition: 'and' or 'or'")
		sem      = flag.String("semantic", "", "semantic function: '', 'cora' or 'voter'")
		seed     = flag.Int64("seed", 1, "random seed")
		pairs    = flag.Bool("pairs", false, "print candidate pairs instead of a summary")
	)
	flag.Parse()

	d, defaults, err := loadDataset(*input, *demo)
	if err != nil {
		return err
	}
	attrs := defaults
	if *attrsArg != "" {
		attrs = strings.Split(*attrsArg, ",")
	}
	if len(attrs) == 0 {
		return fmt.Errorf("no blocking attributes: pass -attrs")
	}

	cfg := semblock.Config{Attrs: attrs, Q: *q, K: *k, L: *l, Seed: *seed}
	if *sem != "" {
		opt, err := semanticOption(*sem, d, *w, *mode)
		if err != nil {
			return err
		}
		cfg.Semantic = opt
	}
	b, err := semblock.New(cfg)
	if err != nil {
		return err
	}
	res, err := b.Block(d)
	if err != nil {
		return err
	}

	if *pairs {
		for _, p := range res.CandidatePairs().Slice() {
			fmt.Printf("%d,%d\n", p.Left(), p.Right())
		}
		return nil
	}
	fmt.Printf("technique:        %s\n", res.Technique)
	fmt.Printf("records:          %d\n", d.Len())
	fmt.Printf("blocks:           %d (max size %d)\n", res.NumBlocks(), res.MaxBlockSize())
	fmt.Printf("candidate pairs:  %d of %d (RR %.6f)\n",
		res.CandidatePairs().Len(), d.TotalPairs(),
		1-float64(res.CandidatePairs().Len())/float64(d.TotalPairs()))
	if d.Labeled() {
		m, err := semblock.Evaluate(res, d)
		if err != nil {
			return err
		}
		fmt.Printf("PC=%.4f PQ=%.4f RR=%.4f FM=%.4f\n", m.PC, m.PQ, m.RR, m.FM)
	}
	return nil
}

// runStream implements the "stream" subcommand: the dataset is replayed
// through the incremental indexer in mini-batches, as if records were
// arriving from a live source.
func runStream(args []string) error {
	fs := flag.NewFlagSet("semblock stream", flag.ExitOnError)
	var (
		input    = fs.String("input", "", "input CSV (header row; optional entity_id column)")
		demo     = fs.String("demo", "", "generate a synthetic dataset instead: 'cora' or 'voter'")
		attrsArg = fs.String("attrs", "", "comma-separated blocking attributes")
		q        = fs.Int("q", 2, "q-gram size")
		k        = fs.Int("k", 4, "minhash functions per hash table")
		l        = fs.Int("l", 16, "number of hash tables")
		w        = fs.Int("w", 0, "w-way semantic hash width (0 = half the signature bits)")
		mode     = fs.String("mode", "or", "w-way composition: 'and' or 'or'")
		sem      = fs.String("semantic", "", "semantic function: '', 'cora' or 'voter'")
		seed     = fs.Int64("seed", 1, "random seed")
		batch    = fs.Int("batch", 64, "mini-batch size (1 = record-at-a-time)")
		workers  = fs.Int("workers", 0, "signature workers / bucket shards (0 = NumCPU)")
		pairs    = fs.Bool("pairs", false, "print candidate pairs as they are discovered")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, defaults, err := loadDataset(*input, *demo)
	if err != nil {
		return err
	}
	attrs := defaults
	if *attrsArg != "" {
		attrs = strings.Split(*attrsArg, ",")
	}
	if len(attrs) == 0 {
		return fmt.Errorf("no blocking attributes: pass -attrs")
	}
	if *batch < 1 {
		return fmt.Errorf("batch size must be >= 1, got %d", *batch)
	}

	cfg := semblock.Config{Attrs: attrs, Q: *q, K: *k, L: *l, Seed: *seed}
	if *sem != "" {
		// The semhash schema is fixed up front from the full dataset, the
		// streaming analogue of deriving it from a reference sample.
		opt, err := semanticOption(*sem, d, *w, *mode)
		if err != nil {
			return err
		}
		cfg.Semantic = opt
	}
	var opts []semblock.IndexerOption
	if *workers > 0 {
		opts = append(opts, semblock.WithWorkers(*workers))
	}
	ix, err := semblock.NewIndexer(cfg, opts...)
	if err != nil {
		return err
	}

	start := time.Now()
	recs := d.Records()
	for lo := 0; lo < len(recs); lo += *batch {
		hi := lo + *batch
		if hi > len(recs) {
			hi = len(recs)
		}
		rows := make([]semblock.Row, 0, hi-lo)
		for _, r := range recs[lo:hi] {
			rows = append(rows, semblock.Row{Entity: r.Entity, Attrs: r.Attrs})
		}
		ix.InsertBatch(rows)
		if *pairs {
			for _, p := range ix.Candidates() {
				fmt.Printf("%d,%d\n", p.Left(), p.Right())
			}
			continue
		}
		fmt.Printf("inserted %6d/%d records, %d candidate pairs so far\n",
			hi, len(recs), ix.PairCount())
	}
	elapsed := time.Since(start)
	if *pairs {
		return nil
	}

	res := ix.Snapshot()
	fmt.Printf("technique:        %s (streaming, batch=%d)\n", res.Technique, *batch)
	fmt.Printf("records:          %d (%.0f inserts/sec)\n",
		d.Len(), float64(d.Len())/elapsed.Seconds())
	fmt.Printf("blocks:           %d (max size %d)\n", res.NumBlocks(), res.MaxBlockSize())
	fmt.Printf("candidate pairs:  %d of %d (RR %.6f)\n",
		res.CandidatePairs().Len(), d.TotalPairs(),
		1-float64(res.CandidatePairs().Len())/float64(d.TotalPairs()))
	if d.Labeled() {
		m, err := semblock.Evaluate(res, d)
		if err != nil {
			return err
		}
		fmt.Printf("PC=%.4f PQ=%.4f RR=%.4f FM=%.4f\n", m.PC, m.PQ, m.RR, m.FM)
	}
	return nil
}

// runPipeline implements the "pipeline" subcommand: one composable
// blocking → pruning → matching run, batch or streaming.
func runPipeline(args []string) error {
	fs := flag.NewFlagSet("semblock pipeline", flag.ExitOnError)
	var (
		input     = fs.String("input", "", "input CSV (header row; optional entity_id column)")
		demo      = fs.String("demo", "", "generate a synthetic dataset instead: 'cora' or 'voter'")
		attrsArg  = fs.String("attrs", "", "comma-separated blocking attributes")
		q         = fs.Int("q", 2, "q-gram size")
		k         = fs.Int("k", 4, "minhash functions per hash table")
		l         = fs.Int("l", 16, "number of hash tables")
		w         = fs.Int("w", 0, "w-way semantic hash width (0 = half the signature bits)")
		mode      = fs.String("mode", "or", "w-way composition: 'and' or 'or'")
		sem       = fs.String("semantic", "", "semantic function: '', 'cora' or 'voter'")
		seed      = fs.Int64("seed", 1, "random seed")
		workers   = fs.Int("workers", 0, "table-build / scoring workers (0 = GOMAXPROCS)")
		meta      = fs.String("meta", "", "meta-blocking pruning stage SCHEME/ALGO, e.g. CBS/WEP (schemes: ARCS CBS ECBS JS EJS; algos: WEP CEP WNP CNP)")
		match     = fs.String("match", "", "matching stage attr=weight list, e.g. title=0.6,authors=0.4")
		threshold = fs.Float64("threshold", 0.5, "match classification threshold in [0,1]")
		streamed  = fs.Bool("stream", false, "run in streaming mode through an incremental index")
		batch     = fs.Int("batch", 256, "pair-batch / row mini-batch size")
		budget    = fs.Int64("budget", 0, "max pair comparisons in the matching stage (0 = unlimited); budgeted pairs are scored best-first by edge weight")
		deadline  = fs.Duration("deadline", 0, "max matching wall time, e.g. 500ms (0 = none); the run truncates, never errors")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, defaults, err := loadDataset(*input, *demo)
	if err != nil {
		return err
	}
	attrs := defaults
	if *attrsArg != "" {
		attrs = strings.Split(*attrsArg, ",")
	}
	if len(attrs) == 0 {
		return fmt.Errorf("no blocking attributes: pass -attrs")
	}

	cfg := semblock.Config{Attrs: attrs, Q: *q, K: *k, L: *l, Seed: *seed, Workers: *workers}
	if *sem != "" {
		opt, err := semanticOption(*sem, d, *w, *mode)
		if err != nil {
			return err
		}
		cfg.Semantic = opt
	}
	b, err := semblock.New(cfg)
	if err != nil {
		return err
	}

	var opts []semblock.PipelineOption
	if *workers > 0 {
		opts = append(opts, semblock.WithPipelineWorkers(*workers))
	}
	opts = append(opts, semblock.WithBatchSize(*batch))
	if *meta != "" {
		scheme, algo, err := parseMeta(*meta)
		if err != nil {
			return err
		}
		opts = append(opts, semblock.WithPruning(scheme, algo))
	}
	if *match != "" {
		m, err := parseMatcher(*match, *threshold)
		if err != nil {
			return err
		}
		opts = append(opts, semblock.WithMatcher(m))
	}
	if *budget > 0 || *deadline > 0 {
		opts = append(opts, semblock.WithBudget(*budget, *deadline))
	}
	p, err := semblock.NewPipeline(b, opts...)
	if err != nil {
		return err
	}

	var out *semblock.PipelineResult
	if *streamed {
		ix, err := semblock.NewIndexer(cfg)
		if err != nil {
			return err
		}
		rows := make(chan semblock.Row)
		go func() {
			defer close(rows)
			for _, r := range d.Records() {
				rows <- semblock.Row{Entity: r.Entity, Attrs: r.Attrs}
			}
		}()
		out, err = p.RunStream(ix, rows)
		if err != nil {
			return err
		}
	} else {
		out, err = p.Run(d)
		if err != nil {
			return err
		}
	}

	modeName := "batch"
	if *streamed {
		modeName = "streaming"
	}
	fmt.Printf("pipeline:          %s (%s)\n", out.Blocks.Technique, modeName)
	fmt.Printf("records:           %d\n", out.Stats.Records)
	fmt.Printf("blocking:          %d blocks, %d comparisons (%v)\n",
		out.Stats.Blocks, out.Stats.Comparisons, out.Stats.BlockTime.Round(time.Microsecond))
	if out.Pruned != nil {
		fmt.Printf("pruning:           %d -> %d comparisons (%v)\n",
			out.Stats.Comparisons, out.Stats.PrunedComparisons, out.Stats.PruneTime.Round(time.Microsecond))
	}
	if out.Matches != nil || out.Stats.PairsScored > 0 {
		fmt.Printf("matching:          %d of %d scored pairs matched (%v)\n",
			out.Stats.Matches, out.Stats.PairsScored, out.Stats.MatchTime.Round(time.Microsecond))
	}
	if out.Stats.Truncated {
		fmt.Printf("budget:            truncated after %d comparisons (best-first)\n",
			out.Stats.ComparisonsUsed)
	}
	if out.Resolution != nil {
		fmt.Printf("clusters:          %d\n", out.Resolution.NumClusters)
		if d.Labeled() {
			quality, err := out.Resolution.Evaluate(d)
			if err != nil {
				return err
			}
			fmt.Printf("resolution:        P=%.4f R=%.4f F1=%.4f\n",
				quality.Precision, quality.Recall, quality.F1)
		}
	}
	if d.Labeled() {
		m, err := semblock.Evaluate(out.Final, d)
		if err != nil {
			return err
		}
		fmt.Printf("blocking quality:  PC=%.4f PQ=%.4f RR=%.4f FM=%.4f\n", m.PC, m.PQ, m.RR, m.FM)
	}
	return nil
}

// parseMeta parses a SCHEME/ALGO pruning spec like "CBS/WEP".
func parseMeta(s string) (semblock.WeightScheme, semblock.PruneAlgo, error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("meta spec %q: want SCHEME/ALGO, e.g. CBS/WEP", s)
	}
	var scheme semblock.WeightScheme
	switch strings.ToUpper(parts[0]) {
	case "ARCS":
		scheme = semblock.WeightSchemeARCS
	case "CBS":
		scheme = semblock.WeightSchemeCBS
	case "ECBS":
		scheme = semblock.WeightSchemeECBS
	case "JS":
		scheme = semblock.WeightSchemeJS
	case "EJS":
		scheme = semblock.WeightSchemeEJS
	default:
		return 0, 0, fmt.Errorf("unknown weight scheme %q (want ARCS, CBS, ECBS, JS or EJS)", parts[0])
	}
	var algo semblock.PruneAlgo
	switch strings.ToUpper(parts[1]) {
	case "WEP":
		algo = semblock.PruneWEP
	case "CEP":
		algo = semblock.PruneCEP
	case "WNP":
		algo = semblock.PruneWNP
	case "CNP":
		algo = semblock.PruneCNP
	default:
		return 0, 0, fmt.Errorf("unknown prune algorithm %q (want WEP, CEP, WNP or CNP)", parts[1])
	}
	return scheme, algo, nil
}

// parseMatcher parses an attr=weight list like "title=0.6,authors=0.4".
func parseMatcher(s string, threshold float64) (*semblock.Matcher, error) {
	var weights []semblock.AttrWeight
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		w := 1.0
		if len(kv) == 2 {
			parsed, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
			if err != nil {
				return nil, fmt.Errorf("match weight %q: %v", part, err)
			}
			w = parsed
		}
		attr := strings.TrimSpace(kv[0])
		if attr == "" {
			return nil, fmt.Errorf("match spec %q has an empty attribute", s)
		}
		weights = append(weights, semblock.AttrWeight{Attr: attr, Weight: w})
	}
	return semblock.NewMatcher(weights, threshold)
}

// loadDataset reads the CSV or generates a demo dataset, returning default
// blocking attributes for the demo domains.
func loadDataset(input, demo string) (*record.Dataset, []string, error) {
	switch {
	case input != "" && demo != "":
		return nil, nil, fmt.Errorf("pass either -input or -demo, not both")
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		d, err := semblock.ReadCSV(f, input)
		return d, nil, err
	case demo == "cora":
		cfg := datagen.DefaultCoraConfig()
		return datagen.Cora(cfg), []string{"authors", "title"}, nil
	case demo == "voter":
		cfg := datagen.DefaultVoterConfig()
		return datagen.Voter(cfg), []string{"first_name", "last_name"}, nil
	case demo != "":
		return nil, nil, fmt.Errorf("unknown demo dataset %q (want cora or voter)", demo)
	default:
		return nil, nil, fmt.Errorf("pass -input FILE or -demo {cora,voter}")
	}
}

// semanticOption builds the SA-LSH option for a named domain function.
func semanticOption(name string, d *record.Dataset, w int, mode string) (*semblock.SemanticOption, error) {
	var fn semblock.SemanticFunction
	var err error
	switch name {
	case "cora":
		fn, err = semblock.NewCoraSemantics(semblock.BibliographicTaxonomy())
	case "voter":
		fn, err = semblock.NewVoterSemantics(semblock.VoterTaxonomy())
	default:
		return nil, fmt.Errorf("unknown semantic function %q (want cora or voter)", name)
	}
	if err != nil {
		return nil, err
	}
	schema, err := semblock.BuildSchema(fn, d)
	if err != nil {
		return nil, err
	}
	if w <= 0 {
		w = (schema.Bits() + 1) / 2
	}
	m := lsh.ModeOR
	if mode == "and" {
		m = lsh.ModeAND
	}
	return &semblock.SemanticOption{Schema: schema, W: w, Mode: m}, nil
}

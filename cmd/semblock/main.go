// Command semblock blocks a CSV dataset from the command line with LSH or
// SA-LSH and prints either quality metrics (when the CSV carries an
// entity_id ground-truth column) or the candidate pairs.
//
// Usage:
//
//	semblock -input records.csv -attrs title,authors -q 4 -k 4 -l 63
//	semblock -input voters.csv -attrs first_name,last_name -semantic voter
//	semblock -demo cora          # generate and block a synthetic dataset
//
// The -semantic flag enables SA-LSH with one of the built-in domain
// semantic functions ("cora": Table 1 missing-value patterns over
// journal/booktitle/institution; "voter": gender/race/ethnic code mapping).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"semblock"
	"semblock/internal/datagen"
	"semblock/internal/lsh"
	"semblock/internal/record"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "semblock:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input    = flag.String("input", "", "input CSV (header row; optional entity_id column)")
		demo     = flag.String("demo", "", "generate a synthetic dataset instead: 'cora' or 'voter'")
		attrsArg = flag.String("attrs", "", "comma-separated blocking attributes")
		q        = flag.Int("q", 2, "q-gram size")
		k        = flag.Int("k", 4, "minhash functions per hash table")
		l        = flag.Int("l", 16, "number of hash tables")
		w        = flag.Int("w", 0, "w-way semantic hash width (0 = half the signature bits)")
		mode     = flag.String("mode", "or", "w-way composition: 'and' or 'or'")
		sem      = flag.String("semantic", "", "semantic function: '', 'cora' or 'voter'")
		seed     = flag.Int64("seed", 1, "random seed")
		pairs    = flag.Bool("pairs", false, "print candidate pairs instead of a summary")
	)
	flag.Parse()

	d, defaults, err := loadDataset(*input, *demo)
	if err != nil {
		return err
	}
	attrs := defaults
	if *attrsArg != "" {
		attrs = strings.Split(*attrsArg, ",")
	}
	if len(attrs) == 0 {
		return fmt.Errorf("no blocking attributes: pass -attrs")
	}

	cfg := semblock.Config{Attrs: attrs, Q: *q, K: *k, L: *l, Seed: *seed}
	if *sem != "" {
		opt, err := semanticOption(*sem, d, *w, *mode)
		if err != nil {
			return err
		}
		cfg.Semantic = opt
	}
	b, err := semblock.New(cfg)
	if err != nil {
		return err
	}
	res, err := b.Block(d)
	if err != nil {
		return err
	}

	if *pairs {
		for _, p := range res.CandidatePairs().Slice() {
			fmt.Printf("%d,%d\n", p.Left(), p.Right())
		}
		return nil
	}
	fmt.Printf("technique:        %s\n", res.Technique)
	fmt.Printf("records:          %d\n", d.Len())
	fmt.Printf("blocks:           %d (max size %d)\n", res.NumBlocks(), res.MaxBlockSize())
	fmt.Printf("candidate pairs:  %d of %d (RR %.6f)\n",
		res.CandidatePairs().Len(), d.TotalPairs(),
		1-float64(res.CandidatePairs().Len())/float64(d.TotalPairs()))
	if d.Labeled() {
		m, err := semblock.Evaluate(res, d)
		if err != nil {
			return err
		}
		fmt.Printf("PC=%.4f PQ=%.4f RR=%.4f FM=%.4f\n", m.PC, m.PQ, m.RR, m.FM)
	}
	return nil
}

// loadDataset reads the CSV or generates a demo dataset, returning default
// blocking attributes for the demo domains.
func loadDataset(input, demo string) (*record.Dataset, []string, error) {
	switch {
	case input != "" && demo != "":
		return nil, nil, fmt.Errorf("pass either -input or -demo, not both")
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		d, err := semblock.ReadCSV(f, input)
		return d, nil, err
	case demo == "cora":
		cfg := datagen.DefaultCoraConfig()
		return datagen.Cora(cfg), []string{"authors", "title"}, nil
	case demo == "voter":
		cfg := datagen.DefaultVoterConfig()
		return datagen.Voter(cfg), []string{"first_name", "last_name"}, nil
	case demo != "":
		return nil, nil, fmt.Errorf("unknown demo dataset %q (want cora or voter)", demo)
	default:
		return nil, nil, fmt.Errorf("pass -input FILE or -demo {cora,voter}")
	}
}

// semanticOption builds the SA-LSH option for a named domain function.
func semanticOption(name string, d *record.Dataset, w int, mode string) (*semblock.SemanticOption, error) {
	var fn semblock.SemanticFunction
	var err error
	switch name {
	case "cora":
		fn, err = semblock.NewCoraSemantics(semblock.BibliographicTaxonomy())
	case "voter":
		fn, err = semblock.NewVoterSemantics(semblock.VoterTaxonomy())
	default:
		return nil, fmt.Errorf("unknown semantic function %q (want cora or voter)", name)
	}
	if err != nil {
		return nil, err
	}
	schema, err := semblock.BuildSchema(fn, d)
	if err != nil {
		return nil, err
	}
	if w <= 0 {
		w = (schema.Bits() + 1) / 2
	}
	m := lsh.ModeOR
	if mode == "and" {
		m = lsh.ModeAND
	}
	return &semblock.SemanticOption{Schema: schema, W: w, Mode: m}, nil
}

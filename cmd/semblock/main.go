// Command semblock blocks a CSV dataset from the command line with LSH or
// SA-LSH and prints either quality metrics (when the CSV carries an
// entity_id ground-truth column) or the candidate pairs.
//
// Usage:
//
//	semblock -input records.csv -attrs title,authors -q 4 -k 4 -l 63
//	semblock -input voters.csv -attrs first_name,last_name -semantic voter
//	semblock -demo cora          # generate and block a synthetic dataset
//	semblock stream -demo cora -batch 64   # incremental/streaming blocking
//
// The -semantic flag enables SA-LSH with one of the built-in domain
// semantic functions ("cora": Table 1 missing-value patterns over
// journal/booktitle/institution; "voter": gender/race/ethnic code mapping).
//
// The "stream" subcommand feeds the dataset through the incremental
// indexer in mini-batches instead of one batch Block call, printing either
// the candidate pairs as they are discovered (-pairs) or a progress line
// per batch plus a final snapshot summary with insert throughput.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"semblock"
	"semblock/internal/datagen"
	"semblock/internal/lsh"
	"semblock/internal/record"
)

func main() {
	var err error
	if len(os.Args) > 1 && os.Args[1] == "stream" {
		err = runStream(os.Args[2:])
	} else {
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "semblock:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input    = flag.String("input", "", "input CSV (header row; optional entity_id column)")
		demo     = flag.String("demo", "", "generate a synthetic dataset instead: 'cora' or 'voter'")
		attrsArg = flag.String("attrs", "", "comma-separated blocking attributes")
		q        = flag.Int("q", 2, "q-gram size")
		k        = flag.Int("k", 4, "minhash functions per hash table")
		l        = flag.Int("l", 16, "number of hash tables")
		w        = flag.Int("w", 0, "w-way semantic hash width (0 = half the signature bits)")
		mode     = flag.String("mode", "or", "w-way composition: 'and' or 'or'")
		sem      = flag.String("semantic", "", "semantic function: '', 'cora' or 'voter'")
		seed     = flag.Int64("seed", 1, "random seed")
		pairs    = flag.Bool("pairs", false, "print candidate pairs instead of a summary")
	)
	flag.Parse()

	d, defaults, err := loadDataset(*input, *demo)
	if err != nil {
		return err
	}
	attrs := defaults
	if *attrsArg != "" {
		attrs = strings.Split(*attrsArg, ",")
	}
	if len(attrs) == 0 {
		return fmt.Errorf("no blocking attributes: pass -attrs")
	}

	cfg := semblock.Config{Attrs: attrs, Q: *q, K: *k, L: *l, Seed: *seed}
	if *sem != "" {
		opt, err := semanticOption(*sem, d, *w, *mode)
		if err != nil {
			return err
		}
		cfg.Semantic = opt
	}
	b, err := semblock.New(cfg)
	if err != nil {
		return err
	}
	res, err := b.Block(d)
	if err != nil {
		return err
	}

	if *pairs {
		for _, p := range res.CandidatePairs().Slice() {
			fmt.Printf("%d,%d\n", p.Left(), p.Right())
		}
		return nil
	}
	fmt.Printf("technique:        %s\n", res.Technique)
	fmt.Printf("records:          %d\n", d.Len())
	fmt.Printf("blocks:           %d (max size %d)\n", res.NumBlocks(), res.MaxBlockSize())
	fmt.Printf("candidate pairs:  %d of %d (RR %.6f)\n",
		res.CandidatePairs().Len(), d.TotalPairs(),
		1-float64(res.CandidatePairs().Len())/float64(d.TotalPairs()))
	if d.Labeled() {
		m, err := semblock.Evaluate(res, d)
		if err != nil {
			return err
		}
		fmt.Printf("PC=%.4f PQ=%.4f RR=%.4f FM=%.4f\n", m.PC, m.PQ, m.RR, m.FM)
	}
	return nil
}

// runStream implements the "stream" subcommand: the dataset is replayed
// through the incremental indexer in mini-batches, as if records were
// arriving from a live source.
func runStream(args []string) error {
	fs := flag.NewFlagSet("semblock stream", flag.ExitOnError)
	var (
		input    = fs.String("input", "", "input CSV (header row; optional entity_id column)")
		demo     = fs.String("demo", "", "generate a synthetic dataset instead: 'cora' or 'voter'")
		attrsArg = fs.String("attrs", "", "comma-separated blocking attributes")
		q        = fs.Int("q", 2, "q-gram size")
		k        = fs.Int("k", 4, "minhash functions per hash table")
		l        = fs.Int("l", 16, "number of hash tables")
		w        = fs.Int("w", 0, "w-way semantic hash width (0 = half the signature bits)")
		mode     = fs.String("mode", "or", "w-way composition: 'and' or 'or'")
		sem      = fs.String("semantic", "", "semantic function: '', 'cora' or 'voter'")
		seed     = fs.Int64("seed", 1, "random seed")
		batch    = fs.Int("batch", 64, "mini-batch size (1 = record-at-a-time)")
		workers  = fs.Int("workers", 0, "signature workers / bucket shards (0 = NumCPU)")
		pairs    = fs.Bool("pairs", false, "print candidate pairs as they are discovered")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, defaults, err := loadDataset(*input, *demo)
	if err != nil {
		return err
	}
	attrs := defaults
	if *attrsArg != "" {
		attrs = strings.Split(*attrsArg, ",")
	}
	if len(attrs) == 0 {
		return fmt.Errorf("no blocking attributes: pass -attrs")
	}
	if *batch < 1 {
		return fmt.Errorf("batch size must be >= 1, got %d", *batch)
	}

	cfg := semblock.Config{Attrs: attrs, Q: *q, K: *k, L: *l, Seed: *seed}
	if *sem != "" {
		// The semhash schema is fixed up front from the full dataset, the
		// streaming analogue of deriving it from a reference sample.
		opt, err := semanticOption(*sem, d, *w, *mode)
		if err != nil {
			return err
		}
		cfg.Semantic = opt
	}
	var opts []semblock.IndexerOption
	if *workers > 0 {
		opts = append(opts, semblock.WithWorkers(*workers))
	}
	ix, err := semblock.NewIndexer(cfg, opts...)
	if err != nil {
		return err
	}

	start := time.Now()
	recs := d.Records()
	for lo := 0; lo < len(recs); lo += *batch {
		hi := lo + *batch
		if hi > len(recs) {
			hi = len(recs)
		}
		rows := make([]semblock.Row, 0, hi-lo)
		for _, r := range recs[lo:hi] {
			rows = append(rows, semblock.Row{Entity: r.Entity, Attrs: r.Attrs})
		}
		ix.InsertBatch(rows)
		if *pairs {
			for _, p := range ix.Candidates() {
				fmt.Printf("%d,%d\n", p.Left(), p.Right())
			}
			continue
		}
		fmt.Printf("inserted %6d/%d records, %d candidate pairs so far\n",
			hi, len(recs), ix.PairCount())
	}
	elapsed := time.Since(start)
	if *pairs {
		return nil
	}

	res := ix.Snapshot()
	fmt.Printf("technique:        %s (streaming, batch=%d)\n", res.Technique, *batch)
	fmt.Printf("records:          %d (%.0f inserts/sec)\n",
		d.Len(), float64(d.Len())/elapsed.Seconds())
	fmt.Printf("blocks:           %d (max size %d)\n", res.NumBlocks(), res.MaxBlockSize())
	fmt.Printf("candidate pairs:  %d of %d (RR %.6f)\n",
		res.CandidatePairs().Len(), d.TotalPairs(),
		1-float64(res.CandidatePairs().Len())/float64(d.TotalPairs()))
	if d.Labeled() {
		m, err := semblock.Evaluate(res, d)
		if err != nil {
			return err
		}
		fmt.Printf("PC=%.4f PQ=%.4f RR=%.4f FM=%.4f\n", m.PC, m.PQ, m.RR, m.FM)
	}
	return nil
}

// loadDataset reads the CSV or generates a demo dataset, returning default
// blocking attributes for the demo domains.
func loadDataset(input, demo string) (*record.Dataset, []string, error) {
	switch {
	case input != "" && demo != "":
		return nil, nil, fmt.Errorf("pass either -input or -demo, not both")
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		d, err := semblock.ReadCSV(f, input)
		return d, nil, err
	case demo == "cora":
		cfg := datagen.DefaultCoraConfig()
		return datagen.Cora(cfg), []string{"authors", "title"}, nil
	case demo == "voter":
		cfg := datagen.DefaultVoterConfig()
		return datagen.Voter(cfg), []string{"first_name", "last_name"}, nil
	case demo != "":
		return nil, nil, fmt.Errorf("unknown demo dataset %q (want cora or voter)", demo)
	default:
		return nil, nil, fmt.Errorf("pass -input FILE or -demo {cora,voter}")
	}
}

// semanticOption builds the SA-LSH option for a named domain function.
func semanticOption(name string, d *record.Dataset, w int, mode string) (*semblock.SemanticOption, error) {
	var fn semblock.SemanticFunction
	var err error
	switch name {
	case "cora":
		fn, err = semblock.NewCoraSemantics(semblock.BibliographicTaxonomy())
	case "voter":
		fn, err = semblock.NewVoterSemantics(semblock.VoterTaxonomy())
	default:
		return nil, fmt.Errorf("unknown semantic function %q (want cora or voter)", name)
	}
	if err != nil {
		return nil, err
	}
	schema, err := semblock.BuildSchema(fn, d)
	if err != nil {
		return nil, err
	}
	if w <= 0 {
		w = (schema.Bits() + 1) / 2
	}
	m := lsh.ModeOR
	if mode == "and" {
		m = lsh.ModeAND
	}
	return &semblock.SemanticOption{Schema: schema, W: w, Mode: m}, nil
}

// Command experiments regenerates the paper's tables and figures over the
// synthetic datasets.
//
// Usage:
//
//	experiments -run fig9              # one experiment
//	experiments -run all               # everything, in paper order
//	experiments -list                  # show available experiment ids
//	experiments -run fig13 -full       # paper-scale scalability sweep
//
// Sizes can be reduced for quick runs with -cora / -voter / -timing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"semblock/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment id to run, or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		cora   = flag.Int("cora", 0, "override Cora dataset size (default 1879)")
		voter  = flag.Int("voter", 0, "override Voter quality-dataset size (default 30000)")
		timing = flag.Int("timing", 0, "override Voter timing-dataset size (default 3000)")
		reps   = flag.Int("reps", 0, "override Table 2 repetition count (default 5)")
		seed   = flag.Int64("seed", 1, "random seed")
		full   = flag.Bool("full", false, "use the paper's full Fig. 13 scale sweep (up to 292,892 records)")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	if *cora > 0 {
		cfg.CoraRecords = *cora
	}
	if *voter > 0 {
		cfg.VoterRecords = *voter
	}
	if *timing > 0 {
		cfg.TimingRecords = *timing
	}
	if *reps > 0 {
		cfg.Repetitions = *reps
	}
	if *full {
		cfg.ScaleSizes = []int{10000, 50000, 100000, 150000, 200000, 240000, 292892}
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(res)
	}
}

// Package semblock is a semantic-aware blocking library for entity
// resolution, reproducing "Semantic-Aware Blocking for Entity Resolution"
// (Wang, Cui & Liang, IEEE TKDE 28(1), 2016).
//
// Blocking groups candidate duplicate records into (possibly overlapping)
// blocks so that only records within a block are compared by a downstream
// matcher. This package implements the paper's SA-LSH framework — minhash
// LSH over textual q-gram similarity, augmented per hash table with w-way
// AND/OR semantic hash functions derived from taxonomy trees — together
// with the full apparatus around it: taxonomies and semantic similarity,
// semhash signatures, parameter tuning, twelve survey baselines,
// meta-blocking, evaluation measures and synthetic benchmark datasets.
//
// # Quick start
//
//	d := semblock.NewDataset("pubs")
//	d.Append(0, map[string]string{"title": "...", "booktitle": "..."})
//	...
//	tax := semblock.BibliographicTaxonomy()
//	fn, _ := semblock.NewCoraSemantics(tax)
//	schema, _ := semblock.BuildSchema(fn, d)
//	b, _ := semblock.New(semblock.Config{
//	    Attrs: []string{"title"}, Q: 4, K: 4, L: 63,
//	    Semantic: &semblock.SemanticOption{Schema: schema, W: 3, Mode: semblock.ModeOR},
//	})
//	blocks, _ := b.Block(d)
//	for _, pair := range blocks.CandidatePairs().Slice() { ... }
//
// # Streaming
//
// The same configuration drives an online index that emits candidate
// pairs incrementally as records arrive:
//
//	ix, _ := semblock.NewIndexer(cfg)
//	for rec := range source {
//	    ix.Insert(semblock.UnknownEntity, rec)
//	    for _, pair := range ix.Candidates() { ... }
//	}
//	snapshot := ix.Snapshot() // equals the batch Block over the same records
//
// # Pipeline
//
// Blocking, meta-blocking pruning and downstream matching compose into one
// concurrent dataflow:
//
//	p, _ := semblock.NewPipeline(b,
//	    semblock.WithPruning(semblock.WeightSchemeCBS, semblock.PruneWEP),
//	    semblock.WithMatcher(matcher))
//	out, _ := p.Run(d) // out.Final, out.Matches, out.Resolution
//
// # Serving
//
// A multi-tenant HTTP service wraps the streaming engine in named, sharded,
// persistent collections ("semblock serve" on the command line):
//
//	srv, _ := semblock.NewServer(semblock.WithDataDir("/var/lib/semblock"))
//	c, _ := srv.Create(semblock.CollectionSpec{
//	    Name: "pubs", Attrs: []string{"title"}, Q: 4, K: 4, L: 63, Shards: 4,
//	})
//	c.Ingest(rows)                          // or POST /v1/collections/pubs/records
//	pairs := c.Candidates()                 // or GET  .../candidates
//	http.ListenAndServe(addr, srv.Handler())
//
// The exported identifiers are aliases of the implementation packages
// under internal/, so the full documented API of those packages is
// available through this single import.
package semblock

import (
	"semblock/internal/baselines"
	"semblock/internal/blocking"
	"semblock/internal/er"
	"semblock/internal/eval"
	"semblock/internal/lsh"
	"semblock/internal/metablocking"
	"semblock/internal/pipeline"
	"semblock/internal/record"
	"semblock/internal/semantic"
	"semblock/internal/server"
	"semblock/internal/stream"
	"semblock/internal/taxonomy"
	"semblock/internal/tuning"
)

// Record model.
type (
	// Dataset is an ordered collection of records with optional ground
	// truth labels.
	Dataset = record.Dataset
	// Record is one row: named string attributes plus IDs.
	Record = record.Record
	// EntityID labels ground-truth entities.
	EntityID = record.EntityID
	// Pair is a canonical unordered record-ID pair.
	Pair = record.Pair
	// PairSet is a set of distinct pairs.
	PairSet = record.PairSet
)

// UnknownEntity marks records without ground truth.
const UnknownEntity = record.UnknownEntity

// NewDataset returns an empty dataset.
func NewDataset(name string) *Dataset { return record.NewDataset(name) }

// ReadCSV/WriteCSV and ReadJSONL/WriteJSONL (de)serialise datasets; the
// JSONL form ({"entity":ID,"attrs":{...}} per line) is also the wire format
// of the serving layer's bulk-ingest endpoint and snapshot segment files.
var (
	ReadCSV    = record.ReadCSV
	WriteCSV   = record.WriteCSV
	ReadJSONL  = record.ReadJSONL
	WriteJSONL = record.WriteJSONL
)

// Taxonomies and semantic similarity (§4 of the paper).
type (
	// Taxonomy is an immutable forest of concept trees.
	Taxonomy = taxonomy.Taxonomy
	// Concept is a node of a taxonomy tree.
	Concept = taxonomy.Concept
	// Interpretation is a record's set of concepts ζ(r).
	Interpretation = taxonomy.Interpretation
	// TaxonomyBuilder assembles taxonomies declaratively.
	TaxonomyBuilder = taxonomy.Builder
)

// NewTaxonomy starts a taxonomy definition.
func NewTaxonomy(name string) *TaxonomyBuilder { return taxonomy.NewBuilder(name) }

// BibliographicTaxonomy returns the paper's Fig. 3 tree t_bib.
func BibliographicTaxonomy() *Taxonomy { return taxonomy.Bibliographic() }

// VoterTaxonomy returns the 12-leaf person taxonomy used for NC Voter.
func VoterTaxonomy() *Taxonomy { return taxonomy.Voter() }

// Semantic functions and semhash signatures (§4.2, §4.4).
type (
	// SemanticFunction maps records to taxonomy concepts.
	SemanticFunction = semantic.Function
	// Pattern is a missing-value pattern row (Table 1).
	Pattern = semantic.Pattern
	// PatternFunction interprets records by missing-value patterns.
	PatternFunction = semantic.PatternFunction
	// ValueFunction interprets records by value lookup tables.
	ValueFunction = semantic.ValueFunction
	// ValueAttr configures one attribute of a ValueFunction.
	ValueAttr = semantic.ValueAttr
	// Schema is a semhash function family (Algorithm 1).
	Schema = semantic.Schema
	// BitVec is a semhash signature.
	BitVec = semantic.BitVec
)

// KeywordRule and Ensemble extend the semantic-function toolbox (§4.2's
// "using meta-data" and §7's feature-discovery direction).
type (
	// KeywordRule maps keyword occurrences to a concept.
	KeywordRule = semantic.KeywordRule
	// KeywordFunction interprets records by keyword rules.
	KeywordFunction = semantic.KeywordFunction
	// Ensemble combines two semantic functions.
	Ensemble = semantic.Ensemble
)

// Semantic-function constructors; see internal/semantic.
var (
	NewPatternSemantics = semantic.NewPatternFunction
	NewValueSemantics   = semantic.NewValueFunction
	NewKeywordSemantics = semantic.NewKeywordFunction
	NewEnsemble         = semantic.NewEnsemble
	NewCoraSemantics    = semantic.NewCoraFunction
	NewCoraKeywords     = semantic.NewCoraKeywordFunction
	NewVoterSemantics   = semantic.NewVoterFunction
	BuildSchema         = semantic.BuildSchema
	CoraPatterns        = semantic.CoraPatterns
)

// Core blocking (§5).
type (
	// Config configures an LSH or SA-LSH blocker.
	Config = lsh.Config
	// SemanticOption upgrades LSH to SA-LSH.
	SemanticOption = lsh.SemanticOption
	// Blocker is a configured (SA-)LSH instance.
	Blocker = lsh.Blocker
	// Mode selects the w-way composition (∧ or ∨).
	Mode = lsh.Mode
	// BlockResult is a set of blocks with derived statistics.
	BlockResult = blocking.Result
	// GenericBlocker is the interface every technique implements.
	GenericBlocker = blocking.Blocker
)

// w-way semantic hash composition modes.
const (
	ModeAND = lsh.ModeAND
	ModeOR  = lsh.ModeOR
)

// New builds an LSH (Semantic == nil) or SA-LSH blocker.
func New(cfg Config) (*Blocker, error) { return lsh.New(cfg) }

// Streaming/incremental blocking: an online (SA-)LSH index that ingests
// records one at a time or in mini-batches and emits candidate pairs as
// collisions occur. A Snapshot over streamed records equals the batch
// Block output on the same dataset.
type (
	// Indexer is the online blocking index; see internal/stream.
	Indexer = stream.Indexer
	// Row is one record to insert into an Indexer.
	Row = stream.Row
	// IndexerOption customises an Indexer (workers, snapshot name).
	IndexerOption = stream.Option
	// SharedLog is the record log + once-per-record signature staging a
	// family of table-subset Indexers can share, so the log is stored once
	// and each record is staged once regardless of the shard count.
	SharedLog = stream.SharedLog
	// StagedBatch is a mini-batch appended to a SharedLog, ready for
	// Indexer.InsertStaged on every attached shard.
	StagedBatch = stream.StagedBatch
)

// NewIndexer builds an empty streaming index for an (SA-)LSH configuration.
func NewIndexer(cfg Config, opts ...IndexerOption) (*Indexer, error) {
	return stream.NewIndexer(cfg, opts...)
}

// NewSharedLog builds an empty shared record log; attach table-subset
// Indexers with WithSharedLog (their configuration must match the log's).
func NewSharedLog(name string, cfg Config, workers int) (*SharedLog, error) {
	return stream.NewSharedLog(name, cfg, workers)
}

// Indexer options.
var (
	WithWorkers       = stream.WithWorkers
	WithIndexerName   = stream.WithName
	WithIndexerTables = stream.WithTables
	WithSharedLog     = stream.WithSharedLog
)

// Collision-probability model of §5.1–§5.2.
var (
	CollisionProbability   = lsh.CollisionProbability
	SemanticFactor         = lsh.SemanticFactor
	SACollisionProbability = lsh.SACollisionProbability
)

// Evaluation measures (§6).
type (
	// Metrics holds PC, PQ, RR, FM and the meta-blocking variants.
	Metrics = eval.Metrics
)

// Evaluate scores a blocking result against ground truth.
var Evaluate = eval.Evaluate

// Parameter tuning (§5.3).
type (
	// TuningParams is a solved (k,l) configuration.
	TuningParams = tuning.Params
)

// Tuning helpers; see internal/tuning.
var (
	ChooseKL              = tuning.ChooseKL
	MinTablesFor          = tuning.MinTablesFor
	ThresholdForError     = tuning.ThresholdForError
	TrueMatchSimilarities = tuning.TrueMatchSimilarities
	SelectQ               = tuning.SelectQ
)

// Baseline techniques (Table 3) and meta-blocking (Fig. 12).
type (
	// KeySpec defines a blocking key for the baseline techniques.
	KeySpec = baselines.KeySpec
	// BaselineSetting couples a configured baseline with its parameters.
	BaselineSetting = baselines.Setting
	// MetaGraph is the meta-blocking weighted blocking graph.
	MetaGraph = metablocking.Graph
	// WeightScheme is a meta-blocking edge-weighting scheme.
	WeightScheme = metablocking.WeightScheme
	// PruneAlgo is a meta-blocking pruning algorithm.
	PruneAlgo = metablocking.PruneAlgo
)

// Baseline and meta-blocking entry points.
var (
	BaselineGrid   = baselines.ParameterGrid
	TechniqueOrder = baselines.TechniqueOrder
	BuildMetaGraph = metablocking.BuildGraph
	TokenBlocking  = metablocking.TokenBlocking
)

// Meta-blocking edge-weighting schemes (for WithPruning and BuildMetaGraph).
const (
	WeightSchemeARCS = metablocking.ARCS
	WeightSchemeCBS  = metablocking.CBS
	WeightSchemeECBS = metablocking.ECBS
	WeightSchemeJS   = metablocking.JS
	WeightSchemeEJS  = metablocking.EJS
)

// Meta-blocking pruning algorithms (for WithPruning and Graph.Prune).
const (
	PruneWEP = metablocking.WEP
	PruneCEP = metablocking.CEP
	PruneWNP = metablocking.WNP
	PruneCNP = metablocking.CNP
)

// LSH variants the paper cites as related techniques: LSH Forest (ref [5])
// and multi-probe LSH (ref [29]).
type (
	// ForestConfig configures LSH-Forest-style blocking with adaptive
	// prefix depth.
	ForestConfig = lsh.ForestConfig
	// Forest is the LSH-Forest blocker.
	Forest = lsh.Forest
	// MultiProbeConfig configures multi-probe minhash banding.
	MultiProbeConfig = lsh.MultiProbeConfig
	// MultiProbe is the multi-probe blocker.
	MultiProbe = lsh.MultiProbe
)

// Variant constructors.
var (
	NewForest     = lsh.NewForest
	NewMultiProbe = lsh.NewMultiProbe
)

// Downstream entity resolution over blocking output (§1: "our blocking
// results can be used as input to any ER algorithms").
type (
	// Matcher scores and classifies candidate pairs.
	Matcher = er.Matcher
	// AttrWeight weights one attribute in the match score.
	AttrWeight = er.AttrWeight
	// Resolution is the clustering outcome of resolving a dataset.
	Resolution = er.Resolution
	// ResolutionQuality holds pairwise precision/recall/F1.
	ResolutionQuality = er.Quality
)

// Resolution entry points.
var (
	NewMatcher = er.NewMatcher
	Resolve    = er.Resolve
)

// SparseIDError is the typed error the blocking paths return for datasets
// whose record IDs are not dense 0..n-1 (see lsh.ValidateDenseIDs).
type SparseIDError = lsh.SparseIDError

// ValidateDenseIDs checks a dataset satisfies the dense-ID invariant.
var ValidateDenseIDs = lsh.ValidateDenseIDs

// Composable blocking→pruning→matching pipeline over the parallel engine:
// chain any GenericBlocker with an optional meta-blocking pruning stage and
// an optional concurrent matching stage, in batch (Run) or streaming
// (RunStream, fed from an Indexer) mode.
type (
	// Pipeline is a configured multi-stage candidate-generation dataflow.
	Pipeline = pipeline.Pipeline
	// PipelineOption customises a Pipeline.
	PipelineOption = pipeline.Option
	// PipelineResult is the output of one pipeline run.
	PipelineResult = pipeline.Result
	// PipelineStats holds per-stage counters and timings.
	PipelineStats = pipeline.Stats
	// Match is one scored candidate pair above the matcher threshold.
	Match = pipeline.Match
)

// NewPipeline builds a pipeline over any blocker; see internal/pipeline.
func NewPipeline(b GenericBlocker, opts ...PipelineOption) (*Pipeline, error) {
	return pipeline.New(b, opts...)
}

// Pipeline options.
var (
	WithPruning         = pipeline.WithPruning
	WithMatcher         = pipeline.WithMatcher
	WithPipelineWorkers = pipeline.WithWorkers
	WithBatchSize       = pipeline.WithBatchSize
	WithMatchSink       = pipeline.WithMatchSink
	WithBudget          = pipeline.WithBudget
)

// Multi-tenant serving layer (internal/server): a Server owns named
// Collections — each backed by N table-sharded streaming indexers whose
// merged candidate set equals the batch Block set on the same records —
// exposed over an HTTP JSON API (Server.Handler) with snapshot persistence
// (Save/Load JSONL segments, checkpointing, restore-on-boot). The CLI
// front-end is "semblock serve".
type (
	// Server is the multi-tenant blocking service.
	Server = server.Server
	// ServerOption customises a Server (data dir, default shards).
	ServerOption = server.Option
	// Collection is one tenant's sharded, persistent blocking index.
	Collection = server.Collection
	// CollectionSpec is a collection's JSON-serialisable configuration.
	CollectionSpec = server.CollectionSpec
	// CollectionSemantic selects a built-in SA-LSH domain for a collection.
	CollectionSemantic = server.SemanticSpec
	// CollectionStats summarises a collection.
	CollectionStats = server.Stats
	// ResolveRequest configures a Collection.Resolve pipeline run.
	ResolveRequest = server.ResolveRequest
	// MatchAttr weights one attribute in a ResolveRequest.
	MatchAttr = server.MatchAttr
	// PruneSpec selects a meta-blocking stage in a ResolveRequest.
	PruneSpec = server.PruneSpec
	// CompactionPolicy configures automatic segment compaction thresholds.
	CompactionPolicy = server.CompactionPolicy
	// CompactionResult summarises one Collection.Compact run.
	CompactionResult = server.CompactionResult
	// ConsumerStats summarises one named consumer group: its durable
	// cursor, pending window, and optional webhook sink.
	ConsumerStats = server.ConsumerStats
	// ConsumerBatch is one acknowledged delivery window of a consumer group.
	ConsumerBatch = server.ConsumerBatch
	// WebhookSpec registers a push-delivery sink on a consumer group.
	WebhookSpec = server.WebhookSpec
	// WebhookDefaults are the server-wide webhook delivery knobs (timeout,
	// bounded retries, exponential backoff) a spec's zero fields inherit.
	WebhookDefaults = server.WebhookDefaults
	// StreamHandlers are the callbacks Collection.StreamConsumer drives.
	StreamHandlers = server.StreamHandlers
)

// DefaultConsumer is the consumer group behind the legacy GET /candidates
// drain; it always exists and cannot be deleted.
const DefaultConsumer = server.DefaultConsumer

// NewServer builds a multi-tenant blocking service; see internal/server.
func NewServer(opts ...ServerOption) (*Server, error) { return server.New(opts...) }

// Server options.
var (
	WithDataDir       = server.WithDataDir
	WithDefaultShards = server.WithDefaultShards
	WithCompaction    = server.WithCompaction
	// WithServerLogger installs a structured (log/slog) request logger.
	WithServerLogger = server.WithLogger
	// WithSlowRequestThreshold promotes requests slower than the threshold
	// to WARN log lines with a per-stage span breakdown.
	WithSlowRequestThreshold = server.WithSlowRequestThreshold
	// WithTraceBuffer sets how many completed request traces GET
	// /debug/traces retains.
	WithTraceBuffer = server.WithTraceBuffer
	// WithWebhookDefaults sets the server-wide webhook delivery policy.
	WithWebhookDefaults = server.WithWebhookDefaults
)

// Serving-layer sentinel errors (match with errors.Is).
var (
	ErrCollectionExists   = server.ErrExists
	ErrCollectionNotFound = server.ErrNotFound
	ErrCollectionPersist  = server.ErrPersist
	// ErrCollectionOrphanFile marks unreferenced files in a collection
	// directory (debris of an interrupted compaction), logged and skipped
	// during restore.
	ErrCollectionOrphanFile = server.ErrOrphanFile
	// ErrConsumerNotFound marks operations on an unknown consumer group.
	ErrConsumerNotFound = server.ErrUnknownConsumer
	// ErrConsumerExists marks creation of a group that already exists.
	ErrConsumerExists = server.ErrConsumerExists
	// ErrConsumerProtected marks deletion of the default group.
	ErrConsumerProtected = server.ErrConsumerProtected
	// ErrConsumerCursor marks an acknowledgment beyond the emitted sequence.
	ErrConsumerCursor = server.ErrCursorOutOfRange
	// ErrDrainBusy marks a drain of a group whose delivery slot is held.
	ErrDrainBusy = server.ErrDrainBusy
)

// LoadCollection restores one collection from its persistence directory.
var LoadCollection = server.LoadCollection

package semblock_test

import (
	"fmt"
	"net/http/httptest"

	"semblock"
)

// Example demonstrates the paper's core behaviour on its own running
// example: two records with identical titles — a conference article and a
// technical report — are never co-blocked by SA-LSH, while the true
// duplicate pair is.
func Example() {
	d := semblock.NewDataset("pubs")
	d.Append(0, map[string]string{"title": "the cascade correlation learning architecture", "booktitle": "nips"})
	d.Append(0, map[string]string{"title": "cascade correlation learning architecture", "booktitle": "nips"})
	d.Append(1, map[string]string{"title": "the cascade correlation learning architecture", "institution": "cmu"})

	fn, _ := semblock.NewCoraSemantics(semblock.BibliographicTaxonomy())
	schema, _ := semblock.BuildSchema(fn, d)
	b, _ := semblock.New(semblock.Config{
		Attrs: []string{"title"}, Q: 2, K: 2, L: 8, Seed: 1,
		Semantic: &semblock.SemanticOption{Schema: schema, W: 1, Mode: semblock.ModeOR},
	})
	res, _ := b.Block(d)
	fmt.Println("duplicates co-blocked:", res.Covers(0, 1))
	fmt.Println("conference/TR co-blocked:", res.Covers(0, 2))
	// Output:
	// duplicates co-blocked: true
	// conference/TR co-blocked: false
}

// ExampleChooseKL reproduces the paper's §6.1 parameter derivation: the
// Cora constraints solve to the published banding parameters.
func ExampleChooseKL() {
	p, _ := semblock.ChooseKL(0.3, 0.2, 0.4, 0.1, 10)
	fmt.Printf("k=%d l=%d\n", p.K, p.L)
	// Output:
	// k=4 l=63
}

// ExampleCollisionProbability shows the banding S-curve the framework is
// tuned on.
func ExampleCollisionProbability() {
	for _, s := range []float64{0.2, 0.3, 0.5} {
		fmt.Printf("s=%.1f -> %.2f\n", s, semblock.CollisionProbability(s, 4, 63))
	}
	// Output:
	// s=0.2 -> 0.10
	// s=0.3 -> 0.40
	// s=0.5 -> 0.98
}

// ExampleTaxonomy_SimConcepts computes the paper's Example 4.4 values on
// the bibliographic taxonomy.
func ExampleTaxonomy_SimConcepts() {
	tax := semblock.BibliographicTaxonomy()
	c0 := tax.MustConcept("C0")
	c1 := tax.MustConcept("C1")
	c2 := tax.MustConcept("C2")
	fmt.Printf("simS(c0,c1) = %.4f\n", tax.SimConcepts(c0, c1))
	fmt.Printf("simS(c1,c2) = %.4f\n", tax.SimConcepts(c1, c2))
	// Output:
	// simS(c0,c1) = 0.8333
	// simS(c1,c2) = 0.6000
}

// ExampleIndexer streams records into the online blocking index one at a
// time: the near-duplicate pair is emitted as a candidate the moment its
// second record arrives, and the final snapshot equals what a batch Block
// run over the same three records would produce.
func ExampleIndexer() {
	ix, _ := semblock.NewIndexer(semblock.Config{
		Attrs: []string{"name"}, Q: 2, K: 2, L: 8, Seed: 1,
	}, semblock.WithWorkers(2))

	arrivals := []map[string]string{
		{"name": "robert smith"},
		{"name": "mary johnson"},
		{"name": "robert smyth"},
	}
	for _, attrs := range arrivals {
		id := ix.Insert(semblock.UnknownEntity, attrs)
		for _, p := range ix.Candidates() {
			fmt.Printf("after record %d: candidate pair (%d,%d)\n", id, p.Left(), p.Right())
		}
	}

	snapshot := ix.Snapshot()
	fmt.Println("records indexed:", ix.Len())
	fmt.Println("distinct candidate pairs:", snapshot.CandidatePairs().Len())
	// Output:
	// after record 2: candidate pair (0,2)
	// records indexed: 3
	// distinct candidate pairs: 1
}

// ExampleNewPipeline chains blocking and concurrent matching into one
// composable run: the pipeline blocks the dataset through the parallel
// table-build engine, scores the candidate pairs over a worker pool, and
// returns the matches plus their transitive clustering.
func ExampleNewPipeline() {
	d := semblock.NewDataset("people")
	d.Append(0, map[string]string{"name": "robert smith"})
	d.Append(0, map[string]string{"name": "robert smyth"})
	d.Append(1, map[string]string{"name": "mary johnson"})
	d.Append(1, map[string]string{"name": "mary jonson"})

	b, _ := semblock.New(semblock.Config{Attrs: []string{"name"}, Q: 2, K: 2, L: 6, Seed: 1})
	m, _ := semblock.NewMatcher([]semblock.AttrWeight{
		{Attr: "name", Weight: 1, Sim: "jaro_winkler"},
	}, 0.9)
	p, _ := semblock.NewPipeline(b, semblock.WithMatcher(m))

	out, _ := p.Run(d)
	for _, match := range out.Matches {
		fmt.Printf("matched (%d,%d)\n", match.Pair.Left(), match.Pair.Right())
	}
	fmt.Println("clusters:", out.Resolution.NumClusters)
	// Output:
	// matched (0,1)
	// matched (2,3)
	// clusters: 2
}

// ExampleNewServer runs the multi-tenant serving layer in-process: a
// collection backed by two table shards ingests a small stream, drains the
// incremental candidates, and serves its health endpoint over HTTP. The
// shard count never changes the candidates — the shards partition the hash
// tables, so their merged output equals an unsharded (and a batch) run.
func ExampleNewServer() {
	srv, _ := semblock.NewServer()
	c, _ := srv.Create(semblock.CollectionSpec{
		Name: "people", Attrs: []string{"name"}, Q: 2, K: 2, L: 8, Seed: 1, Shards: 2,
	})

	ids, _ := c.Ingest([]semblock.Row{
		{Entity: semblock.UnknownEntity, Attrs: map[string]string{"name": "robert smith"}},
		{Entity: semblock.UnknownEntity, Attrs: map[string]string{"name": "mary johnson"}},
		{Entity: semblock.UnknownEntity, Attrs: map[string]string{"name": "robert smyth"}},
	})
	fmt.Println("ingested:", len(ids))
	for _, p := range c.Candidates() {
		fmt.Printf("candidate pair (%d,%d)\n", p.Left(), p.Right())
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, _ := ts.Client().Get(ts.URL + "/healthz")
	fmt.Println("healthz:", resp.StatusCode)
	resp.Body.Close()
	// Output:
	// ingested: 3
	// candidate pair (0,2)
	// healthz: 200
}

// ExampleNewMatcher runs the downstream resolution step over blocking
// output.
func ExampleNewMatcher() {
	d := semblock.NewDataset("people")
	d.Append(0, map[string]string{"name": "robert smith"})
	d.Append(0, map[string]string{"name": "robert smyth"})
	d.Append(1, map[string]string{"name": "mary johnson"})

	b, _ := semblock.New(semblock.Config{Attrs: []string{"name"}, Q: 2, K: 2, L: 6, Seed: 1})
	blocks, _ := b.Block(d)

	m, _ := semblock.NewMatcher([]semblock.AttrWeight{
		{Attr: "name", Weight: 1, Sim: "jaro_winkler"},
	}, 0.9)
	res := semblock.Resolve(d, blocks, m)
	fmt.Println("clusters:", res.NumClusters)
	// Output:
	// clusters: 2
}

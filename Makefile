# Developer entry points. CI runs the same targets.

.PHONY: build test race vet bench serve smoke

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# Runs the blocking/pipeline benchmarks and writes BENCH_pipeline.json so
# the perf trajectory is tracked across PRs. BENCHTIME=1x for a smoke run.
bench:
	./scripts/bench.sh

# Runs the multi-tenant blocking service locally with persistence under
# ./data. Override: make serve SERVE_FLAGS='-addr :9090 -shards 8'.
serve:
	go run ./cmd/semblock serve -addr :8080 -data-dir ./data -shards 4 $(SERVE_FLAGS)

# End-to-end serve smoke test (start, ingest, query, graceful shutdown,
# checkpoint assertion). CI runs this as the serve-smoke job.
smoke:
	./scripts/smoke_serve.sh

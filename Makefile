# Developer entry points. CI runs the same targets.

.PHONY: build test race vet lint semlint bench benchcmp serve smoke

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# Mirrors the CI lint job: formatting (simplified), vet, the project
# analyzer suite, and (when installed on the developer machine) staticcheck.
lint: semlint
	@unformatted="$$(gofmt -s -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt -s needed on:"; echo "$$unformatted"; exit 1; fi
	go vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping (CI runs it)"; fi

# Builds the project multichecker from its nested module (tools/semlint, so
# the root module keeps zero dependencies) and runs the whole suite —
# hotpathalloc, nilreceiver, ctxflow, metriclint, lockdiscipline — over the
# repository. Any diagnostic fails the build; suppress a justified one with
# `//semblock:allow <analyzer> <reason>` (see docs/ARCHITECTURE.md).
semlint:
	go -C tools/semlint build -o ../../bin/semlint .
	./bin/semlint ./...

# Compares the current BENCH_pipeline.json against the committed baseline —
# the same gates the CI bench job applies after every run: >25% allocs/op
# or >100% ns/op regression, parallel/serial speedup < 1.5x (machines with
# GOMAXPROCS >= 4 only), CollectionIngest shards=8 allocs/op drifting
# >10% above shards=1, the PipelineEndToEnd allocs/op hard ceiling, and
# the traced pipeline staying within 10% ns/op of the untraced one.
benchcmp:
	git show HEAD:BENCH_pipeline.json > /tmp/bench_baseline.json
	go run ./scripts/benchcmp -max-regress 25 -max-ns-regress 100 \
		-min-speedup 1.5 -flat-tolerance 10 \
		-alloc-ceiling BenchmarkPipelineEndToEnd=90000 \
		-ns-overhead BenchmarkPipelineEndToEndTraced:BenchmarkPipelineEndToEnd \
		-overhead-tolerance 10 \
		/tmp/bench_baseline.json BENCH_pipeline.json

# Runs the blocking/pipeline benchmarks and writes BENCH_pipeline.json so
# the perf trajectory is tracked across PRs. BENCHTIME=1x for a smoke run.
bench:
	./scripts/bench.sh

# Runs the multi-tenant blocking service locally with persistence under
# ./data. Override: make serve SERVE_FLAGS='-addr :9090 -shards 8'.
serve:
	go run ./cmd/semblock serve -addr :8080 -data-dir ./data -shards 4 $(SERVE_FLAGS)

# End-to-end serve smoke test (start, ingest, query, graceful shutdown,
# checkpoint assertion). CI runs this as the serve-smoke job.
smoke:
	./scripts/smoke_serve.sh

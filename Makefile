# Developer entry points. CI runs the same targets.

.PHONY: build test race vet bench

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...

# Runs the blocking/pipeline benchmarks and writes BENCH_pipeline.json so
# the perf trajectory is tracked across PRs. BENCHTIME=1x for a smoke run.
bench:
	./scripts/bench.sh
